"""The tree network model from Section 3 of the paper.

A cluster is a directed graph ``G = (V, E)`` where ``V = S ∪ M`` —
switches and machines — and every physical link ``(u, v)`` contributes
two unidirectional edges ``(u, v)`` and ``(v, u)`` (full-duplex
Ethernet).  The spanning-tree protocol guarantees the physical topology
is a tree, so there is a unique path between any two nodes and machines
can only be leaves.

:class:`Topology` enforces these structural invariants on
:meth:`Topology.validate` and offers the queries the scheduling core
needs: neighbours, subtree machine counts, unique paths (via
:class:`repro.topology.paths.PathOracle`) and the machine↔rank mapping
used by the MPI-style layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import TopologyError

#: A unidirectional channel between two adjacent nodes.
Edge = Tuple[str, str]


class NodeKind(enum.Enum):
    """Kind of a node in the cluster graph."""

    MACHINE = "machine"
    SWITCH = "switch"


@dataclass(frozen=True)
class Node:
    """A named node in the cluster graph.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"n0"`` or ``"s1"``.
    kind:
        Whether the node is a compute machine (leaf) or a switch.
    """

    name: str
    kind: NodeKind

    @property
    def is_machine(self) -> bool:
        return self.kind is NodeKind.MACHINE

    @property
    def is_switch(self) -> bool:
        return self.kind is NodeKind.SWITCH


class Topology:
    """A switched-Ethernet cluster modelled as an undirected tree.

    Nodes are added with :meth:`add_machine` / :meth:`add_switch` and
    connected with :meth:`add_link`.  Machines are assigned contiguous
    MPI-style ranks in insertion order.  Call :meth:`validate` (or build
    through :mod:`repro.topology.builder`) before handing a topology to
    the scheduler; validation checks the tree invariants once so that all
    later queries can assume them.

    Example
    -------
    >>> topo = Topology()
    >>> topo.add_switch("s0")
    >>> topo.add_machine("n0"); topo.add_machine("n1"); topo.add_machine("n2")
    >>> for m in ("n0", "n1", "n2"):
    ...     topo.add_link("s0", m)
    >>> topo.validate()
    >>> topo.num_machines
    3
    """

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._adj: Dict[str, List[str]] = {}
        self._machines: List[str] = []
        self._switches: List[str] = []
        self._links: List[Tuple[str, str]] = []
        self._validated = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_machine(self, name: str) -> None:
        """Add a compute machine (must end up a leaf of the tree)."""
        self._add_node(name, NodeKind.MACHINE)
        self._machines.append(name)

    def add_switch(self, name: str) -> None:
        """Add an Ethernet switch (interior node)."""
        self._add_node(name, NodeKind.SWITCH)
        self._switches.append(name)

    def _add_node(self, name: str, kind: NodeKind) -> None:
        if not name:
            raise TopologyError("node name must be non-empty")
        if name in self._nodes:
            raise TopologyError(f"duplicate node name: {name!r}")
        self._nodes[name] = Node(name, kind)
        self._adj[name] = []
        self._validated = False

    def add_link(self, u: str, v: str) -> None:
        """Add a full-duplex physical link between nodes *u* and *v*.

        The link contributes the directed edges ``(u, v)`` and ``(v, u)``.
        """
        for name in (u, v):
            if name not in self._nodes:
                raise TopologyError(f"unknown node: {name!r}")
        if u == v:
            raise TopologyError(f"self-link on node {u!r}")
        if v in self._adj[u]:
            raise TopologyError(f"duplicate link between {u!r} and {v!r}")
        self._adj[u].append(v)
        self._adj[v].append(u)
        self._links.append((u, v))
        self._validated = False

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def machines(self) -> Sequence[str]:
        """Machine names in rank order."""
        return tuple(self._machines)

    @property
    def switches(self) -> Sequence[str]:
        """Switch names in insertion order."""
        return tuple(self._switches)

    @property
    def num_machines(self) -> int:
        return len(self._machines)

    @property
    def num_switches(self) -> int:
        return len(self._switches)

    @property
    def links(self) -> Sequence[Tuple[str, str]]:
        """Physical (undirected) links in insertion order."""
        return tuple(self._links)

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def is_machine(self, name: str) -> bool:
        return self.node(name).is_machine

    def is_switch(self, name: str) -> bool:
        return self.node(name).is_switch

    def neighbors(self, name: str) -> Sequence[str]:
        """Neighbours of *name* in link-insertion order."""
        if name not in self._adj:
            raise TopologyError(f"unknown node: {name!r}")
        return tuple(self._adj[name])

    def degree(self, name: str) -> int:
        return len(self.neighbors(name))

    def directed_edges(self) -> Iterator[Edge]:
        """Iterate over every unidirectional channel."""
        for u, v in self._links:
            yield (u, v)
            yield (v, u)

    # ------------------------------------------------------------------
    # rank mapping
    # ------------------------------------------------------------------
    def rank_of(self, machine: str) -> int:
        """MPI-style rank of a machine (insertion order)."""
        node = self.node(machine)
        if not node.is_machine:
            raise TopologyError(f"{machine!r} is a switch, not a machine")
        return self._machines.index(machine)

    def machine_of(self, rank: int) -> str:
        """Machine name for an MPI-style rank."""
        if not 0 <= rank < len(self._machines):
            raise TopologyError(
                f"rank {rank} out of range [0, {len(self._machines)})"
            )
        return self._machines[rank]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the Section 3 invariants; raise :class:`TopologyError` if violated.

        The invariants: at least one machine exists, the graph is
        connected, it is acyclic (``#links == #nodes - 1`` with
        connectivity), and every machine is a leaf.
        """
        if not self._machines:
            raise TopologyError("topology has no machines")
        n_nodes = len(self._nodes)
        if len(self._links) != n_nodes - 1:
            raise TopologyError(
                f"not a tree: {n_nodes} nodes but {len(self._links)} links "
                f"(a tree needs exactly {n_nodes - 1})"
            )
        # connectivity via BFS from an arbitrary node
        start = next(iter(self._nodes))
        seen: Set[str] = {start}
        frontier = [start]
        while frontier:
            nxt: List[str] = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        if len(seen) != n_nodes:
            raise TopologyError(
                f"not connected: reached {len(seen)} of {n_nodes} nodes"
            )
        for m in self._machines:
            if len(self._adj[m]) != 1:
                raise TopologyError(
                    f"machine {m!r} has degree {len(self._adj[m])}; machines "
                    "must be leaves attached to exactly one switch"
                )
            # A machine may attach directly to another machine only in the
            # degenerate 2-node cluster; the paper assumes |M| >= 3 with
            # switches, but we only require the peer to exist.
        self._validated = True

    @property
    def validated(self) -> bool:
        return self._validated

    # ------------------------------------------------------------------
    # subtree decomposition
    # ------------------------------------------------------------------
    def component_without_edge(self, u: str, v: str) -> FrozenSet[str]:
        """Nodes of the connected component containing *u* when link (u, v) is removed.

        This is ``G_u`` from Section 3: removing a tree link splits the
        graph into exactly two components.
        """
        if v not in self._adj.get(u, ()):  # also validates u
            raise TopologyError(f"no link between {u!r} and {v!r}")
        seen: Set[str] = {u}
        frontier = [u]
        while frontier:
            nxt: List[str] = []
            for a in frontier:
                for b in self._adj[a]:
                    if b == v and a == u:
                        continue
                    if b not in seen:
                        seen.add(b)
                        nxt.append(b)
            frontier = nxt
        if v in seen:
            raise TopologyError(
                f"removing link ({u!r}, {v!r}) did not disconnect the graph; "
                "topology is not a tree"
            )
        return frozenset(seen)

    def machines_in(self, nodes: Iterable[str]) -> List[str]:
        """Machines among *nodes*, in rank order."""
        node_set = set(nodes)
        return [m for m in self._machines if m in node_set]

    def subtree_nodes(self, root: str, branch: str) -> FrozenSet[str]:
        """Nodes of the subtree hanging off *root* through neighbour *branch*.

        Equivalent to the component of *branch* when link (root, branch)
        is removed.
        """
        return self.component_without_edge(branch, root)

    def subtree_machines(self, root: str, branch: str) -> List[str]:
        """Machines in the subtree of *root* through *branch*, rank order."""
        return self.machines_in(self.subtree_nodes(root, branch))

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(machines={len(self._machines)}, "
            f"switches={len(self._switches)}, links={len(self._links)})"
        )

    def copy(self) -> "Topology":
        """Deep-ish copy (nodes are immutable)."""
        other = Topology()
        for name in self._nodes:
            node = self._nodes[name]
            if node.is_machine:
                other.add_machine(name)
            else:
                other.add_switch(name)
        for u, v in self._links:
            other.add_link(u, v)
        if self._validated:
            other.validate()
        return other

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._machines == other._machines
            and self._switches == other._switches
            and set(map(frozenset, self._links)) == set(map(frozenset, other._links))
        )

    def __hash__(self) -> int:  # topologies are mutable; identity hash
        return id(self)
