"""Text format for topology descriptions.

The paper's routine generator "takes the topology information as input";
this module defines that input format for our reproduction.  It is a
line-oriented format that is trivial to write by hand or emit from
switch-discovery tooling::

    # Figure 1 example cluster
    switch s0 s1 s2 s3
    machine n0 n1 n2 n3 n4 n5
    link s0 n0
    link s0 s2
    ...

Declaration order matters for machines: it fixes the MPI rank mapping.
"""

from __future__ import annotations

import io
from typing import IO, List, Union

from repro.errors import TopologyFormatError
from repro.topology.graph import Topology


def loads_topology(text: str) -> Topology:
    """Parse a topology description from a string."""
    return load_topology(io.StringIO(text))


def load_topology(source: Union[str, IO[str]]) -> Topology:
    """Parse a topology description from a file path or text stream."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return load_topology(fh)
    topo = Topology()
    for lineno, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword, args = fields[0].lower(), fields[1:]
        try:
            if keyword == "switch":
                _require(args, lineno, "switch needs at least one name")
                for name in args:
                    topo.add_switch(name)
            elif keyword == "machine":
                _require(args, lineno, "machine needs at least one name")
                for name in args:
                    topo.add_machine(name)
            elif keyword == "link":
                if len(args) != 2:
                    raise TopologyFormatError(
                        f"line {lineno}: link needs exactly two endpoints"
                    )
                topo.add_link(args[0], args[1])
            else:
                raise TopologyFormatError(
                    f"line {lineno}: unknown keyword {keyword!r}"
                )
        except TopologyFormatError:
            raise
        except Exception as exc:  # wrap TopologyError with line context
            raise TopologyFormatError(f"line {lineno}: {exc}") from exc
    try:
        topo.validate()
    except Exception as exc:
        raise TopologyFormatError(f"invalid topology: {exc}") from exc
    return topo


def _require(args: List[str], lineno: int, message: str) -> None:
    if not args:
        raise TopologyFormatError(f"line {lineno}: {message}")


def dumps_topology(topology: Topology) -> str:
    """Serialize a topology to the text format (round-trips with loads)."""
    out = io.StringIO()
    dump_topology(topology, out)
    return out.getvalue()


def dump_topology(topology: Topology, sink: Union[str, IO[str]]) -> None:
    """Serialize a topology to a file path or text stream."""
    if isinstance(sink, str):
        with open(sink, "w", encoding="utf-8") as fh:
            dump_topology(topology, fh)
            return
    if topology.switches:
        sink.write("switch " + " ".join(topology.switches) + "\n")
    if topology.machines:
        sink.write("machine " + " ".join(topology.machines) + "\n")
    for u, v in topology.links:
        sink.write(f"link {u} {v}\n")
