"""Text format for physical (possibly redundant) wiring descriptions.

The forwarding-topology format (:mod:`repro.topology.serialization`)
describes the *tree* the scheduler consumes.  This format describes the
*wiring* — redundant trunks, bridge priorities — that the spanning-tree
protocol reduces to that tree::

    # two redundant trunks between the core pair
    switch core1 priority=4096
    switch core2
    switch leaf1
    machine n0 leaf1
    trunk core1 core2 cost=19
    trunk core1 core2
    trunk core1 leaf1
    trunk core2 leaf1

``switch NAME [priority=P]`` declares a bridge; ``machine NAME SWITCH``
attaches a host; ``trunk A B [cost=C]`` adds a switch-to-switch link
(repeatable for parallel links).
"""

from __future__ import annotations

import io
from typing import IO, Union

from repro.errors import TopologyFormatError
from repro.topology.spanning_tree import DEFAULT_LINK_COST, PhysicalNetwork


def loads_physical(text: str) -> PhysicalNetwork:
    """Parse a physical wiring description from a string."""
    return load_physical(io.StringIO(text))


def load_physical(source: Union[str, IO[str]]) -> PhysicalNetwork:
    """Parse a physical wiring description from a path or stream."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return load_physical(fh)
    network = PhysicalNetwork()
    for lineno, raw in enumerate(source, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword, args = fields[0].lower(), fields[1:]
        try:
            if keyword == "switch":
                if not args:
                    raise TopologyFormatError(
                        f"line {lineno}: switch needs a name"
                    )
                name = args[0]
                priority = 32768
                for extra in args[1:]:
                    key, _, value = extra.partition("=")
                    if key != "priority" or not value:
                        raise TopologyFormatError(
                            f"line {lineno}: unknown switch option {extra!r}"
                        )
                    priority = int(value)
                network.add_switch(name, priority)
            elif keyword == "machine":
                if len(args) != 2:
                    raise TopologyFormatError(
                        f"line {lineno}: machine needs NAME SWITCH"
                    )
                network.add_machine(args[0], args[1])
            elif keyword == "trunk":
                if len(args) < 2:
                    raise TopologyFormatError(
                        f"line {lineno}: trunk needs two switches"
                    )
                cost = DEFAULT_LINK_COST
                for extra in args[2:]:
                    key, _, value = extra.partition("=")
                    if key != "cost" or not value:
                        raise TopologyFormatError(
                            f"line {lineno}: unknown trunk option {extra!r}"
                        )
                    cost = int(value)
                network.add_link(args[0], args[1], cost)
            else:
                raise TopologyFormatError(
                    f"line {lineno}: unknown keyword {keyword!r}"
                )
        except TopologyFormatError:
            raise
        except Exception as exc:
            raise TopologyFormatError(f"line {lineno}: {exc}") from exc
    return network


def dumps_physical(network: PhysicalNetwork) -> str:
    """Serialize a physical wiring (round-trips with loads)."""
    out = io.StringIO()
    for name, priority in network.switch_priority.items():
        if priority == 32768:
            out.write(f"switch {name}\n")
        else:
            out.write(f"switch {name} priority={priority}\n")
    for machine, switch in network.machine_attachment.items():
        out.write(f"machine {machine} {switch}\n")
    for a, b, cost in network.switch_links:
        if cost == DEFAULT_LINK_COST:
            out.write(f"trunk {a} {b}\n")
        else:
            out.write(f"trunk {a} {b} cost={cost}\n")
    return out.getvalue()
