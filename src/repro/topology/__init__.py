"""Tree-topology substrate for Ethernet switched clusters.

Ethernet switches run a spanning-tree protocol, so the forwarding
topology of any switched cluster is a tree (paper, Section 3).  This
package models that tree, builds the standard cluster shapes used in the
paper's experiments, computes unique forwarding paths, and analyses
per-link loads / bottlenecks / the peak aggregate AAPC throughput.
"""

from repro.topology.graph import Node, NodeKind, Topology
from repro.topology.builder import (
    chain_of_switches,
    paper_example_cluster,
    random_tree,
    single_switch,
    star_of_switches,
    topology_a,
    topology_b,
    topology_c,
    tree_from_spec,
    tree_of_switches,
)
from repro.topology.paths import PathOracle
from repro.topology.analysis import (
    aapc_edge_loads,
    aapc_load,
    best_case_completion_time,
    bottleneck_edges,
    pattern_edge_loads,
    peak_aggregate_throughput,
)
from repro.topology.serialization import (
    dump_topology,
    dumps_topology,
    load_topology,
    loads_topology,
)
from repro.topology.spanning_tree import (
    PhysicalNetwork,
    SpanningTreeResult,
    compute_spanning_tree,
)

__all__ = [
    "Node",
    "NodeKind",
    "Topology",
    "PathOracle",
    "single_switch",
    "star_of_switches",
    "chain_of_switches",
    "paper_example_cluster",
    "random_tree",
    "tree_from_spec",
    "tree_of_switches",
    "topology_a",
    "topology_b",
    "topology_c",
    "aapc_edge_loads",
    "pattern_edge_loads",
    "aapc_load",
    "bottleneck_edges",
    "peak_aggregate_throughput",
    "best_case_completion_time",
    "load_topology",
    "loads_topology",
    "dump_topology",
    "dumps_topology",
]
