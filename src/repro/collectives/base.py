"""Shared types for collective builders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.core.program import Block, Program
from repro.errors import SchedulingError
from repro.topology.graph import Topology


@dataclass
class CollectiveBuild:
    """Programs plus the delivery expectation of one collective call.

    Feed both to :func:`repro.sim.executor.run_programs`::

        build = ring_allgather(topo, msize)
        run_programs(topo, build.programs, msize=0, params=params,
                     expected_blocks=build.expected_blocks)
    """

    name: str
    programs: Dict[str, Program]
    expected_blocks: Dict[str, Set[Block]]

    def total_wire_bytes(self) -> int:
        """Bytes put on the wire across all ranks (for cost comparisons)."""
        from repro.core.program import OpKind

        return sum(
            op.wire_size(0)
            for prog in self.programs.values()
            for op in prog.ops
            if op.kind in (OpKind.ISEND, OpKind.SEND)
        )


def resolve_root(topology: Topology, root) -> int:
    """Accept a rank index or a machine name; return the rank index."""
    if isinstance(root, str):
        return topology.rank_of(root)
    if not 0 <= root < topology.num_machines:
        raise SchedulingError(
            f"root rank {root} out of range [0, {topology.num_machines})"
        )
    return int(root)
