"""Ring and recursive-doubling allgather.

Allgather moves every rank's *msize*-byte block to every other rank.
The two classic realizations sit at opposite ends of the
latency/bandwidth trade-off, and — like the paper's alltoall story —
behave very differently on multi-switch topologies:

* **ring**: ``N - 1`` steps; at step ``s`` rank ``i`` forwards to its
  successor the block that originated at ``(i - s) mod N``.  With ranks
  grouped per switch (as the paper's topologies are), each trunk
  carries exactly one flow per direction per step — naturally
  contention-free, like the paper's schedule.
* **recursive doubling** (power-of-two ranks): ``log2 N`` steps; at
  step ``k`` rank ``i`` exchanges everything it has with ``i ^ 2^k``.
  The last steps hurl half the total payload across the widest cut —
  straight through the bottleneck trunk.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.collectives.base import CollectiveBuild
from repro.core.program import Op, OpKind, Program, validate_programs
from repro.errors import SchedulingError
from repro.topology.graph import Topology


def _expected_allgather(machines) -> Dict[str, Set[Tuple[str, str]]]:
    return {
        m: {(src, m) for src in machines if src != m} for m in machines
    }


def dfs_machine_order(topology: Topology) -> tuple:
    """Machines in depth-first traversal order of the tree.

    Consecutive machines in this order are topologically close, so a
    ring built over it crosses each tree edge at most twice per
    direction across the whole cycle — the minimum for any Hamiltonian
    cycle on a tree's leaves.
    """
    start = topology.machines[0]
    seen = {start}
    order = []
    stack = [start]
    while stack:
        node = stack.pop()
        if topology.is_machine(node):
            order.append(node)
        for neighbor in reversed(topology.neighbors(node)):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return tuple(order)


def ring_allgather(
    topology: Topology, msize: int, *, order: "str | None" = None
) -> CollectiveBuild:
    """Neighbour-ring allgather: N-1 steps, one block per step per rank.

    *order* selects the ring:

    * ``None`` (default) — rank order, which the paper-style builders
      already group per switch;
    * ``"dfs"`` — machines ordered by a depth-first traversal of the
      tree, which provably minimises how often consecutive ring
      neighbours cross each tree edge (every edge at most twice per
      direction over the whole cycle).  On topologies whose rank order
      scatters machines across switches this is the topology-aware
      fix — the allgather analogue of the paper's idea.
    """
    if order not in (None, "dfs"):
        raise SchedulingError(f"unknown ring order {order!r}")
    machines = (
        dfs_machine_order(topology) if order == "dfs" else topology.machines
    )
    n = len(machines)
    programs = {m: Program(m) for m in machines}
    for step in range(n - 1):
        for i, me in enumerate(machines):
            to = machines[(i + 1) % n]
            frm = machines[(i - 1) % n]
            outgoing_origin = machines[(i - step) % n]
            incoming_origin = machines[(i - 1 - step) % n]
            prog = programs[me]
            if n > 1:
                prog.append(
                    Op(OpKind.IRECV, peer=frm, tag=step, phase=step)
                )
                prog.append(
                    Op(OpKind.ISEND, peer=to, tag=step,
                       blocks=((outgoing_origin, to),),
                       nbytes=msize, phase=step)
                )
                prog.append(Op(OpKind.WAITALL, phase=step))
    validate_programs(programs)
    name = "ring-allgather-dfs" if order == "dfs" else "ring-allgather"
    return CollectiveBuild(name, programs, _expected_allgather(machines))


def recursive_doubling_allgather(
    topology: Topology, msize: int
) -> CollectiveBuild:
    """Exchange-doubling allgather; requires a power-of-two rank count."""
    machines = topology.machines
    n = len(machines)
    if n & (n - 1):
        raise SchedulingError(
            f"recursive doubling requires a power-of-two rank count, got {n}"
        )
    programs = {m: Program(m) for m in machines}
    # held[i] = origins rank i currently has (by index).
    held: List[List[int]] = [[i] for i in range(n)]
    step = 0
    distance = 1
    while distance < n:
        new_held = [list(h) for h in held]
        for i, me in enumerate(machines):
            peer_index = i ^ distance
            peer = machines[peer_index]
            blocks = tuple((machines[o], peer) for o in held[i])
            prog = programs[me]
            prog.append(Op(OpKind.IRECV, peer=peer, tag=step, phase=step))
            prog.append(
                Op(OpKind.ISEND, peer=peer, tag=step, blocks=blocks,
                   nbytes=len(blocks) * msize, phase=step)
            )
            prog.append(Op(OpKind.WAITALL, phase=step))
            new_held[peer_index] = sorted(set(new_held[peer_index]) | set(held[i]))
        held = new_held
        distance *= 2
        step += 1
    for i in range(n):
        assert len(held[i]) == n, "recursive doubling construction bug"
    validate_programs(programs)
    return CollectiveBuild(
        "recursive-doubling-allgather", programs, _expected_allgather(machines)
    )
