"""Binomial-tree broadcast.

``ceil(log2 N)`` rounds: in round ``k`` (counting down from the top)
every rank that already has the data sends it to the rank ``2^k``
positions away (mod N, relative to the root).  Each hop moves the full
*msize* buffer, so every op sets an explicit ``nbytes = msize`` while
its block list names the destinations the copy ultimately covers — the
executor then verifies every rank received the root's payload exactly
once.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.collectives.base import CollectiveBuild, resolve_root
from repro.core.program import Op, OpKind, Program, validate_programs
from repro.topology.graph import Topology


def binomial_bcast(
    topology: Topology, msize: int, *, root: "int | str" = 0
) -> CollectiveBuild:
    """Build a binomial broadcast of *msize* bytes from *root*."""
    machines = topology.machines
    n = len(machines)
    root_rank = resolve_root(topology, root)
    programs = {m: Program(m) for m in machines}

    def covered(rel: int, pof2: int) -> List[int]:
        """Relative ranks served through the subtree rooted at rel+pof2."""
        base = rel + pof2
        return [base + d for d in range(pof2) if base + d < n]

    # Relative numbering: rank 0 is the root; rel r maps to
    # (root_rank + r) mod n.
    def absolute(rel: int) -> str:
        return machines[(root_rank + rel) % n]

    # Highest power of two below n.
    pof2 = 1
    while pof2 * 2 < n:
        pof2 *= 2
    step = 0
    while pof2 >= 1:
        for rel in range(0, n, pof2 * 2):
            target = rel + pof2
            if target >= n:
                continue
            blocks = tuple(
                (absolute(0), absolute(c)) for c in covered(rel, pof2)
            )
            programs[absolute(rel)].append(
                Op(OpKind.ISEND, peer=absolute(target), tag=step,
                   blocks=blocks, nbytes=msize, phase=step)
            )
            programs[absolute(rel)].append(Op(OpKind.WAITALL, phase=step))
            programs[absolute(target)].append(
                Op(OpKind.RECV, peer=absolute(rel), tag=step, phase=step)
            )
        pof2 //= 2
        step += 1

    validate_programs(programs)
    expected: Dict[str, Set[Tuple[str, str]]] = {
        m: set() for m in machines
    }
    root_name = machines[root_rank]
    for m in machines:
        if m != root_name:
            expected[m] = {(root_name, m)}
    return CollectiveBuild("binomial-bcast", programs, expected)
