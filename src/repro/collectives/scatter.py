"""Binomial-tree scatter and gather.

Scatter: the root owns one distinct *msize*-byte block per rank; each
binomial round forwards to the subtree head every block its subtree
will need, halving the payload per hop down the tree.  Gather is the
time-reversal: subtree heads accumulate their subtree's blocks and
forward them toward the root.

Both use relative numbering around the root, explicit per-op byte
counts (``blocks * msize``), and the executor's delivery verifier:
scatter ends with every rank holding exactly its own block; gather ends
with the root holding one block from everyone.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.collectives.base import CollectiveBuild, resolve_root
from repro.core.program import Op, OpKind, Program, validate_programs
from repro.topology.graph import Topology


def _subtree(rel: int, pof2: int, n: int) -> List[int]:
    """Relative ranks of the binomial subtree rooted at ``rel + pof2``."""
    base = rel + pof2
    return [base + d for d in range(pof2) if base + d < n]


def _plan_rounds(n: int):
    """Yield (step, sender_rel, target_rel, subtree_rels), top-down."""
    pof2 = 1
    while pof2 * 2 < n:
        pof2 *= 2
    step = 0
    while pof2 >= 1:
        for rel in range(0, n, pof2 * 2):
            if rel + pof2 < n:
                yield step, rel, rel + pof2, _subtree(rel, pof2, n)
        pof2 //= 2
        step += 1


def binomial_scatter(
    topology: Topology, msize: int, *, root: "int | str" = 0
) -> CollectiveBuild:
    """Scatter one *msize*-byte block from *root* to every rank."""
    machines = topology.machines
    n = len(machines)
    root_rank = resolve_root(topology, root)

    def absolute(rel: int) -> str:
        return machines[(root_rank + rel) % n]

    root_name = machines[root_rank]
    programs = {m: Program(m) for m in machines}
    for step, sender, target, subtree in _plan_rounds(n):
        blocks = tuple((root_name, absolute(c)) for c in subtree)
        programs[absolute(sender)].append(
            Op(OpKind.ISEND, peer=absolute(target), tag=step,
               blocks=blocks, nbytes=len(blocks) * msize, phase=step)
        )
        programs[absolute(sender)].append(Op(OpKind.WAITALL, phase=step))
        programs[absolute(target)].append(
            Op(OpKind.RECV, peer=absolute(sender), tag=step, phase=step)
        )
    validate_programs(programs)
    expected: Dict[str, Set[Tuple[str, str]]] = {
        m: ({(root_name, m)} if m != root_name else set()) for m in machines
    }
    return CollectiveBuild("binomial-scatter", programs, expected)


def binomial_gather(
    topology: Topology, msize: int, *, root: "int | str" = 0
) -> CollectiveBuild:
    """Gather one *msize*-byte block from every rank at *root*.

    The reverse binomial schedule: rounds run bottom-up, and the block
    ``(origin, root)`` travels via the subtree heads.
    """
    machines = topology.machines
    n = len(machines)
    root_rank = resolve_root(topology, root)

    def absolute(rel: int) -> str:
        return machines[(root_rank + rel) % n]

    root_name = machines[root_rank]
    rounds = list(_plan_rounds(n))
    max_step = max((step for step, *_ in rounds), default=0)
    programs = {m: Program(m) for m in machines}
    # reverse: the scatter's last round happens first, directions flip
    for step, sender, target, subtree in sorted(
        rounds, key=lambda r: -r[0]
    ):
        gather_step = max_step - step
        blocks = tuple((absolute(c), root_name) for c in subtree)
        programs[absolute(target)].append(
            Op(OpKind.ISEND, peer=absolute(sender), tag=gather_step,
               blocks=blocks, nbytes=len(blocks) * msize, phase=gather_step)
        )
        programs[absolute(target)].append(Op(OpKind.WAITALL, phase=gather_step))
        programs[absolute(sender)].append(
            Op(OpKind.RECV, peer=absolute(target), tag=gather_step,
               phase=gather_step)
        )
    validate_programs(programs)
    expected: Dict[str, Set[Tuple[str, str]]] = {m: set() for m in machines}
    expected[root_name] = {
        (m, root_name) for m in machines if m != root_name
    }
    return CollectiveBuild("binomial-gather", programs, expected)
