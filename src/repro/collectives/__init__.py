"""Further collectives built on the same op-IR + simulator substrate.

The paper motivates AAPC with applications — matrix transpose,
convolution, data redistribution — that in practice mix `MPI_Alltoall`
with other collectives.  This package implements the classic
point-to-point realizations of those collectives on the library's
program IR so they run, verified, on the same simulated cluster:

* :func:`~repro.collectives.bcast.binomial_bcast` — log-step broadcast;
* :func:`~repro.collectives.scatter.binomial_scatter` /
  :func:`~repro.collectives.scatter.binomial_gather` — personalized
  root collectives over the binomial tree;
* :func:`~repro.collectives.allgather.ring_allgather` /
  :func:`~repro.collectives.allgather.recursive_doubling_allgather` —
  the bandwidth-optimal neighbour ring vs. the latency-optimal
  exchange, whose trunk behaviour on multi-switch topologies mirrors
  the paper's alltoall story.

Every builder returns per-rank :class:`~repro.core.program.Program`
objects plus the delivery expectation the executor verifies.
"""

from repro.collectives.bcast import binomial_bcast
from repro.collectives.scatter import binomial_gather, binomial_scatter
from repro.collectives.allgather import (
    dfs_machine_order,
    recursive_doubling_allgather,
    ring_allgather,
)
from repro.collectives.base import CollectiveBuild

__all__ = [
    "CollectiveBuild",
    "binomial_bcast",
    "binomial_scatter",
    "binomial_gather",
    "ring_allgather",
    "recursive_doubling_allgather",
    "dfs_machine_order",
]
