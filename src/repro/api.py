"""High-level, MPI-flavoured front door: :class:`Communicator`.

Downstream users mostly want one object that hides the pipeline::

    from repro.api import Communicator
    from repro.topology import topology_c

    comm = Communicator(topology_c())
    t = comm.alltoall(msize=64 * 1024)               # the paper's routine
    t_lam = comm.alltoall(msize=64 * 1024, algorithm="lam")
    t_ag = comm.allgather(msize=64 * 1024)
    comm.bcast(msize=4096, root=0)

Every call builds the programs, runs the simulator with delivery
verification, and returns the :class:`~repro.sim.executor.RunResult`.
Schedules, sync plans and programs are cached per (algorithm, msize
class) so repeated calls — e.g. inside an application model like
``examples/matrix_transpose.py`` — pay construction once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.algorithms import get_algorithm
from repro.algorithms.irregular import (
    PostAllAlltoallv,
    ScheduledAlltoallv,
    expected_blocks_for,
)
from repro.collectives import (
    binomial_bcast,
    binomial_gather,
    binomial_scatter,
    recursive_doubling_allgather,
    ring_allgather,
)
from repro.core.irregular import SizeMap
from repro.errors import ReproError
from repro.sim.executor import RunResult, run_programs
from repro.sim.params import NetworkParams
from repro.topology.graph import Topology
from repro.topology.paths import PathOracle


class Communicator:
    """A simulated cluster with MPI-style collective entry points."""

    def __init__(
        self,
        topology: Topology,
        params: Optional[NetworkParams] = None,
        *,
        link_bandwidths: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> None:
        if not topology.validated:
            topology.validate()
        self.topology = topology
        self.params = params if params is not None else NetworkParams()
        self.link_bandwidths = link_bandwidths
        self._oracle = PathOracle(topology)
        self._program_cache: Dict[Tuple[str, int], dict] = {}

    @property
    def size(self) -> int:
        """Number of ranks (machines)."""
        return self.topology.num_machines

    def rank_name(self, rank: int) -> str:
        return self.topology.machine_of(rank)

    # ------------------------------------------------------------------
    def alltoall(
        self,
        msize: int,
        *,
        algorithm: str = "generated",
        seed: Optional[int] = None,
        trace: bool = False,
        telemetry: bool = False,
    ) -> RunResult:
        """Run MPI_Alltoall with *msize* bytes per pair.

        *telemetry* attaches the flight-recorder bundle
        (:class:`~repro.obs.telemetry.RunTelemetry`) to the result.
        """
        key = (algorithm, msize)
        programs = self._program_cache.get(key)
        if programs is None:
            programs = get_algorithm(algorithm).build_programs(
                self.topology, msize
            )
            self._program_cache[key] = programs
        return self._run(programs, msize, seed=seed, trace=trace, telemetry=telemetry)

    def alltoallv(
        self,
        sizes: SizeMap,
        *,
        scheduled: bool = True,
        seed: Optional[int] = None,
    ) -> RunResult:
        """Run MPI_Alltoallv for a per-pair byte map."""
        builder = ScheduledAlltoallv() if scheduled else PostAllAlltoallv()
        programs = builder.build_programs(self.topology, sizes)
        return self._run(
            programs,
            0,
            seed=seed,
            expected=expected_blocks_for(self.topology, sizes),
        )

    def allgather(
        self,
        msize: int,
        *,
        algorithm: str = "ring",
        seed: Optional[int] = None,
    ) -> RunResult:
        """Run MPI_Allgather (``"ring"`` or ``"recursive-doubling"``)."""
        if algorithm == "ring":
            build = ring_allgather(self.topology, msize)
        elif algorithm == "recursive-doubling":
            build = recursive_doubling_allgather(self.topology, msize)
        else:
            raise ReproError(
                f"unknown allgather algorithm {algorithm!r}; "
                "expected 'ring' or 'recursive-doubling'"
            )
        return self._run(
            build.programs, 0, seed=seed, expected=build.expected_blocks
        )

    def bcast(
        self, msize: int, *, root: "int | str" = 0, seed: Optional[int] = None
    ) -> RunResult:
        """Run MPI_Bcast of *msize* bytes from *root*."""
        build = binomial_bcast(self.topology, msize, root=root)
        return self._run(
            build.programs, 0, seed=seed, expected=build.expected_blocks
        )

    def scatter(
        self, msize: int, *, root: "int | str" = 0, seed: Optional[int] = None
    ) -> RunResult:
        """Run MPI_Scatter of one *msize*-byte block per rank."""
        build = binomial_scatter(self.topology, msize, root=root)
        return self._run(
            build.programs, 0, seed=seed, expected=build.expected_blocks
        )

    def gather(
        self, msize: int, *, root: "int | str" = 0, seed: Optional[int] = None
    ) -> RunResult:
        """Run MPI_Gather of one *msize*-byte block per rank."""
        build = binomial_gather(self.topology, msize, root=root)
        return self._run(
            build.programs, 0, seed=seed, expected=build.expected_blocks
        )

    # ------------------------------------------------------------------
    def _run(
        self,
        programs,
        msize: int,
        *,
        seed: Optional[int],
        expected=None,
        trace: bool = False,
        telemetry: bool = False,
    ) -> RunResult:
        params = self.params if seed is None else self.params.with_seed(seed)
        return run_programs(
            self.topology,
            programs,
            msize,
            params,
            oracle=self._oracle,
            expected_blocks=expected,
            link_bandwidths=self.link_bandwidths,
            trace=trace,
            telemetry=telemetry,
        )
