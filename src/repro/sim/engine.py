"""Discrete-event engine with generator-coroutine processes.

A minimal but complete DES kernel: a binary-heap event queue keyed by
``(time, sequence)`` (the sequence number makes simultaneous events run
in schedule order, so runs are fully deterministic), one-shot
:class:`SimEvent` wait objects, and :meth:`Engine.spawn` which drives a
generator coroutine that may yield

* a ``float`` — sleep that many simulated seconds,
* a :class:`SimEvent` — park until the event triggers.

Same-timestamp events form a *batch*.  :meth:`Engine.defer` registers a
callback that runs once at the **end of the current batch** — after
every already-queued event at the current instant, but before simulated
time advances.  The flow network uses it to coalesce any number of
same-instant flow-set changes into a single max-min re-solve (see
:mod:`repro.sim.network`); deferred callbacks may schedule new events
at the same instant, which extend the batch.

This is the substrate under :mod:`repro.sim.mpi`; it knows nothing
about networks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.metrics_registry import active_registry


class SimEvent:
    """A one-shot event processes can wait on.

    Triggering wakes every waiter (in wait order) with an optional
    value.  Waiting on an already-triggered event resumes immediately.
    """

    __slots__ = ("engine", "_triggered", "_value", "_callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._triggered = False
        self._value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def on_trigger(self, callback: Callable[[Any], None]) -> None:
        """Run *callback(value)* when triggered (immediately if already)."""
        if self._triggered:
            callback(self._value)
        else:
            self._callbacks.append(callback)


class Engine:
    """The event loop: a heap of timestamped callbacks."""

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._events_processed = 0
        self._peak_heap_depth = 0
        # Metric handles are captured once at construction; when no
        # registry is active the run loop pays one None test per event.
        registry = active_registry()
        if registry is not None:
            self._m_events = registry.counter(
                "engine.events_total", "Events processed by the event loop"
            )
            self._m_queue = registry.gauge(
                "engine.queue_depth", "Pending events at the last batch boundary"
            )
            self._m_batch = registry.histogram(
                "engine.event_batch_size", "Events sharing one timestamp"
            )
        else:
            self._m_events = None
            self._m_queue = None
            self._m_batch = None
        self._batch_time = -1.0
        self._batch_count = 0
        #: End-of-batch callbacks (see :meth:`defer`).
        self._deferred: List[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def peak_heap_depth(self) -> int:
        """High-water mark of pending events (telemetry: sim memory/load)."""
        return self._peak_heap_depth

    def event(self) -> SimEvent:
        """Create a fresh one-shot event bound to this engine."""
        return SimEvent(self)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* after *delay* simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, callback))
        if len(self._heap) > self._peak_heap_depth:
            self._peak_heap_depth = len(self._heap)

    def defer(self, callback: Callable[[], None]) -> None:
        """Run *callback* at the end of the current same-timestamp batch.

        The callback fires after every event already queued at the
        current instant has run, at the same simulated time — before
        the clock advances to the next event (and before :meth:`run`
        returns, when the heap drains first).  Deferred callbacks may
        schedule new events at the current instant; those extend the
        batch and any callbacks they defer run in turn.
        """
        self._deferred.append(callback)

    def spawn(self, generator: Generator) -> SimEvent:
        """Drive a coroutine; returns an event triggered when it finishes.

        The coroutine may yield a float (sleep) or a :class:`SimEvent`
        (wait).  The completion event's value is the coroutine's
        ``StopIteration`` value.
        """
        done = self.event()

        def step(_sent: Any = None) -> None:
            try:
                yielded = generator.send(_sent)
            except StopIteration as stop:
                done.trigger(stop.value)
                return
            if isinstance(yielded, SimEvent):
                yielded.on_trigger(step)
            elif isinstance(yielded, (int, float)):
                # ``step`` doubles as a zero-arg callback: no per-sleep
                # closure allocation on the hot resume path.
                self.schedule(float(yielded), step)
            else:
                raise SimulationError(
                    f"process yielded {yielded!r}; expected SimEvent or delay"
                )

        # Start on the next event-loop turn so spawn order is preserved
        # but the caller finishes first.
        self.schedule(0.0, step)
        return done

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Process events until the heap drains (or *until*/eventcount hit).

        Raises :class:`SimulationError` when *max_events* fire — the
        deadlock/livelock backstop for buggy programs.
        """
        m_events = self._m_events
        heap = self._heap
        while True:
            if self._deferred and (not heap or heap[0][0] > self._now):
                # End of the current same-timestamp batch: run deferred
                # callbacks before the clock advances.  They may push
                # new events (or defer again) at the current instant.
                self._run_deferred()
                continue
            if not heap:
                break
            time, _seq, callback = heap[0]
            if until is not None and time > until:
                self._now = until
                self._flush_batch()
                return
            heapq.heappop(heap)
            if time < self._now - 1e-12:
                raise SimulationError(
                    f"time went backwards: {time} < {self._now}"
                )
            self._now = max(self._now, time)
            self._events_processed += 1
            if m_events is not None:
                m_events.value += 1
                if time != self._batch_time:
                    if self._batch_count:
                        self._m_batch.observe(self._batch_count)
                    self._batch_time = time
                    self._batch_count = 1
                    self._m_queue.value = len(self._heap)
                else:
                    self._batch_count += 1
            if self._events_processed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; simulation is likely "
                    "stuck in a livelock"
                )
            callback()
        self._flush_batch()

    def _run_deferred(self) -> None:
        """Run the pending end-of-batch callbacks (one generation)."""
        batch, self._deferred = self._deferred, []
        for callback in batch:
            callback()

    def _flush_batch(self) -> None:
        """Record the trailing same-timestamp event batch, if any."""
        if self._m_batch is not None and self._batch_count:
            self._m_batch.observe(self._batch_count)
            self._batch_count = 0
            self._m_queue.value = len(self._heap)
