"""Flow-level network model with max-min fair bandwidth sharing.

Every in-flight (rendezvous) message is a :class:`Flow` over the unique
directed tree path between its endpoints.  Whenever the flow set
changes, rates are recomputed by **progressive filling**: repeatedly
find the directed edge with the smallest fair share
``available_capacity / unfrozen_flows`` and freeze its flows at that
share — the classic max-min allocation.  Edge capacity shrinks under
multiplexing via :meth:`NetworkParams.effective_capacity`, modelling
TCP/Ethernet goodput collapse (see :mod:`repro.sim.params`).

Rate changes are *batched*: adds/removes at the same instant trigger a
single settle, which keeps event counts manageable when e.g. the LAM
algorithm launches ~1000 flows at once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.obs.bus import EventBus, FlowFinished, FlowStarted, LinkOccupancy
from repro.obs.metrics_registry import active_registry
from repro.sim.engine import Engine
from repro.sim.params import NetworkParams
from repro.topology.graph import Edge, Topology
from repro.topology.paths import PathOracle

#: Residual bytes below which a flow counts as finished (float safety).
_EPSILON_BYTES = 1e-6


class Flow:
    """One fluid transfer over a fixed directed path."""

    __slots__ = ("fid", "src", "dst", "edges", "size", "remaining", "rate", "on_complete", "start_time", "end_time", "tag", "phase")

    def __init__(
        self,
        fid: int,
        src: str,
        dst: str,
        edges: Tuple[Edge, ...],
        nbytes: float,
        on_complete: Callable[["Flow"], None],
        start_time: float,
        tag: int = -1,
        phase: int = -1,
    ) -> None:
        self.fid = fid
        self.src = src
        self.dst = dst
        self.edges = edges
        self.size = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.on_complete = on_complete
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.tag = tag
        self.phase = phase


class FlowNetwork:
    """The cluster's links plus the active flow set and rate solver."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        params: NetworkParams,
        oracle: Optional[PathOracle] = None,
        link_bandwidths: Optional[Dict[Tuple[str, str], float]] = None,
        bus: Optional[EventBus] = None,
        injector=None,
    ) -> None:
        """*link_bandwidths* optionally overrides the uniform link speed
        per physical link; keys may name either orientation and apply to
        both directed edges (full-duplex links).  *bus* is an optional
        telemetry bus: flow starts/finishes and per-edge occupancy
        changes are published to it (``None`` = zero overhead).
        *injector* is an optional
        :class:`~repro.faults.injector.FaultInjector`: edge capacities
        are scaled by its per-edge factor and rates are re-solved at
        every fault boundary (degradation onset/clearance)."""
        self.engine = engine
        self.bus = bus
        self.injector = injector
        self.topology = topology
        self.params = params
        self.oracle = oracle if oracle is not None else PathOracle(topology)
        self._edge_bandwidth: Dict[Edge, float] = {}
        if link_bandwidths:
            for (u, v), bw in link_bandwidths.items():
                if bw <= 0:
                    raise SimulationError(
                        f"bandwidth for link ({u!r}, {v!r}) must be positive"
                    )
                if v not in topology.neighbors(u):
                    raise SimulationError(
                        f"no physical link between {u!r} and {v!r}"
                    )
                self._edge_bandwidth[(u, v)] = bw
                self._edge_bandwidth[(v, u)] = bw
        self._flows: Dict[int, Flow] = {}
        self._edge_flows: Dict[Edge, Set[int]] = {}
        # Endpoint edges (machine uplinks/downlinks) suffer the incast
        # collapse; switch-to-switch trunks share fluidly.
        self._endpoint_edge: Dict[Edge, bool] = {
            (u, v): topology.is_machine(u) or topology.is_machine(v)
            for u, v in topology.directed_edges()
        }
        self._next_fid = 0
        self._last_update = 0.0
        self._dirty = False
        self._completion_generation = 0
        # Statistics for the invariant tests and reports.
        self.bytes_injected = 0.0
        self.bytes_delivered = 0.0
        self.peak_concurrent_flows = 0
        self.max_edge_multiplexing = 0
        #: Bytes actually transported per directed edge.
        self.edge_bytes: Dict[Edge, float] = {}
        # Fault boundaries are rate-change instants: re-solve max-min
        # whenever a link degrades, fails or recovers so every flow's
        # piecewise-constant rate stays exact.
        if injector is not None:
            for t in injector.boundaries():
                if t > 0:
                    self.engine.schedule(t, self._mark_dirty)
        # Metric handles captured once; None handles keep the hot paths
        # at one test per site (see repro.obs.metrics_registry).
        registry = active_registry()
        if registry is not None:
            self._m_resolves = registry.counter(
                "network.resolves_total", "Max-min rate re-solves"
            )
            self._m_flowset = registry.counter(
                "network.flow_set_changes", "Flow-set / rate-change instants"
            )
            self._m_touched = registry.histogram(
                "network.resolve_touched", "Flow x link pairs per re-solve"
            )
            self._m_waterfill = registry.histogram(
                "network.waterfill_iterations", "Progressive-filling rounds"
            )
            self._m_saturated = registry.histogram(
                "network.saturated_links", "Edges frozen per re-solve"
            )
            self._m_inflight = registry.gauge(
                "network.flows_in_flight", "Active flows after a settle"
            )
        else:
            self._m_resolves = None
            self._m_flowset = None
            self._m_touched = None
            self._m_waterfill = None
            self._m_saturated = None
            self._m_inflight = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def start_flow(
        self,
        src: str,
        dst: str,
        nbytes: float,
        on_complete: Callable[[Flow], None],
        *,
        tag: int = -1,
        phase: int = -1,
    ) -> Flow:
        """Inject a transfer of *nbytes* from *src* to *dst*.

        *on_complete* fires (via the engine) when the last byte arrives.
        *tag*/*phase* identify the carrying message for telemetry.
        """
        if nbytes <= 0:
            raise SimulationError(f"flow size must be positive, got {nbytes}")
        self._advance_progress()
        edges = self.oracle.path_edges(src, dst)
        if not edges:
            raise SimulationError(f"no path from {src!r} to {dst!r}")
        flow = Flow(
            self._next_fid, src, dst, edges, nbytes, on_complete,
            self.engine.now, tag, phase,
        )
        self._next_fid += 1
        self._flows[flow.fid] = flow
        for e in edges:
            self._edge_flows.setdefault(e, set()).add(flow.fid)
        self.bytes_injected += nbytes
        self.peak_concurrent_flows = max(
            self.peak_concurrent_flows, len(self._flows)
        )
        if self.bus is not None:
            now = self.engine.now
            self.bus.publish(
                FlowStarted(
                    now, flow.fid, src, dst, flow.size, edges,
                    flow.tag, flow.phase,
                )
            )
            for e in edges:
                self.bus.publish(
                    LinkOccupancy(now, e, len(self._edge_flows[e]))
                )
        self._mark_dirty()
        return flow

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow_rate(self, flow: Flow) -> float:
        return flow.rate

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _mark_dirty(self) -> None:
        if not self._dirty:
            self._dirty = True
            self.engine.schedule(0.0, self._settle)
            if self._m_flowset is not None:
                self._m_flowset.value += 1

    def _advance_progress(self) -> None:
        """Account bytes moved since the last rate change."""
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows.values():
                if flow.rate > 0:
                    before = flow.remaining
                    flow.remaining = max(0.0, before - flow.rate * dt)
                    moved = before - flow.remaining
                    self.bytes_delivered += moved
                    for e in flow.edges:
                        self.edge_bytes[e] = self.edge_bytes.get(e, 0.0) + moved
        self._last_update = now

    def _settle(self) -> None:
        """Recompute rates and schedule the next completion sweep."""
        if not self._dirty:
            return
        self._dirty = False
        self._advance_progress()
        self._complete_finished()
        if self._m_resolves is not None:
            self._m_resolves.value += 1
            self._m_inflight.value = len(self._flows)
        if not self._flows:
            return
        self._allocate_max_min()
        running = [
            flow.remaining / flow.rate
            for flow in self._flows.values()
            if flow.rate > 0
        ]
        if not running:
            # Every flow is frozen behind a failed link; a fault
            # boundary (recovery) or the stall watchdog wakes us.
            return
        next_completion = min(running)
        self._completion_generation += 1
        generation = self._completion_generation
        self.engine.schedule(
            max(0.0, next_completion), lambda: self._on_completion_timer(generation)
        )

    def _on_completion_timer(self, generation: int) -> None:
        if generation != self._completion_generation:
            return  # superseded by a later settle
        self._advance_progress()
        self._complete_finished()
        self._dirty = True
        self._settle()

    def _complete_finished(self) -> None:
        done = [
            flow
            for flow in self._flows.values()
            if flow.remaining <= _EPSILON_BYTES
        ]
        for flow in done:
            del self._flows[flow.fid]
            for e in flow.edges:
                self._edge_flows[e].discard(flow.fid)
            flow.remaining = 0.0
            flow.rate = 0.0
            flow.end_time = self.engine.now
            if self.bus is not None:
                now = self.engine.now
                self.bus.publish(
                    FlowFinished(
                        now, flow.fid, flow.src, flow.dst, flow.size,
                        flow.start_time, flow.tag, flow.phase,
                    )
                )
                for e in flow.edges:
                    self.bus.publish(
                        LinkOccupancy(now, e, len(self._edge_flows[e]))
                    )
            flow.on_complete(flow)

    def _allocate_max_min(self) -> None:
        """Progressive filling over the directed edges."""
        params = self.params
        # Per-edge state: unfrozen flow count and available capacity.
        unfrozen_count: Dict[Edge, int] = {}
        available: Dict[Edge, float] = {}
        injector = self.injector
        now = self.engine.now
        touched = 0
        for e, fids in self._edge_flows.items():
            n = len(fids)
            if n == 0:
                continue
            touched += n
            largest = max(self._flows[fid].size for fid in fids)
            unfrozen_count[e] = n
            capacity = params.effective_capacity(
                n,
                largest,
                self._endpoint_edge[e],
                line_bandwidth=self._edge_bandwidth.get(e),
            )
            if injector is not None:
                capacity *= injector.link_factor(e, now)
            available[e] = capacity
            self.max_edge_multiplexing = max(self.max_edge_multiplexing, n)
        frozen: Set[int] = set()
        for flow in self._flows.values():
            flow.rate = 0.0
        remaining_flows = len(self._flows)
        iterations = 0
        while remaining_flows > 0:
            iterations += 1
            # Find the tightest edge.
            best_edge: Optional[Edge] = None
            best_share = float("inf")
            for e, count in unfrozen_count.items():
                if count <= 0:
                    continue
                share = available[e] / count
                if share < best_share - 1e-15:
                    best_share = share
                    best_edge = e
            if best_edge is None:
                raise SimulationError(
                    "max-min allocation stalled with flows unassigned"
                )
            # Freeze every unfrozen flow crossing the tightest edge.
            for fid in list(self._edge_flows[best_edge]):
                if fid in frozen:
                    continue
                flow = self._flows[fid]
                flow.rate = best_share
                frozen.add(fid)
                remaining_flows -= 1
                for e in flow.edges:
                    unfrozen_count[e] -= 1
                    available[e] -= best_share
            unfrozen_count[best_edge] = 0
        if self._m_waterfill is not None:
            self._m_touched.observe(touched)
            self._m_waterfill.observe(iterations)
            # Each filling round saturates (freezes) exactly one edge.
            self._m_saturated.observe(iterations)
