"""Flow-level network model with max-min fair bandwidth sharing.

Every in-flight (rendezvous) message is a :class:`Flow` over the unique
directed tree path between its endpoints.  Whenever the flow set
changes, rates are recomputed by **progressive filling**: repeatedly
find the directed edge with the smallest fair share
``available_capacity / unfrozen_flows`` and freeze its flows at that
share — the classic max-min allocation.  Edge capacity shrinks under
multiplexing via :meth:`NetworkParams.effective_capacity`, modelling
TCP/Ethernet goodput collapse (see :mod:`repro.sim.params`).

The solve itself is delegated to an allocator
(:mod:`repro.sim.allocator`): the default ``incremental`` allocator
re-solves only the connected component of the flow/edge incidence
graph reachable from edges whose flow set changed — flows elsewhere
keep their rates, which max-min decomposition makes exact — while the
``reference`` allocator re-runs the original full filling every time.

Rate-change instants are *batched*: adds/removes/completions at the
same instant coalesce into a single settle that runs at the end of the
engine's same-timestamp batch (:meth:`Engine.defer`), which keeps both
event counts and re-solve counts manageable when e.g. the LAM
algorithm launches ~1000 flows at once.  Per-flow byte accounting is
lazy — a flow's ``remaining`` is caught up only when its own rate
changes, at its completion deadline, or via :meth:`sync_progress` —
and completions come from a deadline heap with stale-entry
invalidation instead of an O(flows) scan per settle.  Completed
:class:`Flow` objects are pooled and reused by later
:meth:`start_flow` calls (disable with ``NetworkParams.pool_flows``);
a completed flow's fields stay readable until the object is reused.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.obs.bus import EventBus, FlowFinished, FlowStarted, LinkOccupancy
from repro.obs.metrics_registry import active_registry
from repro.sim.allocator import make_allocator
from repro.sim.engine import Engine
from repro.sim.params import NetworkParams
from repro.topology.graph import Edge, Topology
from repro.topology.paths import PathOracle

#: Residual bytes below which a flow counts as finished (float safety).
_EPSILON_BYTES = 1e-6

#: Slack when popping deadline-heap entries: the engine may fire a
#: timer one rounding step before the stored deadline (``now + (d -
#: now)`` need not equal ``d`` in floats); entries this close are due.
_EPSILON_TIME = 1e-12


class Flow:
    """One fluid transfer over a fixed directed path."""

    __slots__ = (
        "fid", "src", "dst", "edges", "size", "remaining", "rate",
        "on_complete", "start_time", "end_time", "tag", "phase",
        "gen", "updated", "drate",
    )

    def __init__(
        self,
        fid: int,
        src: str,
        dst: str,
        edges: Tuple[Edge, ...],
        nbytes: float,
        on_complete: Callable[["Flow"], None],
        start_time: float,
        tag: int = -1,
        phase: int = -1,
    ) -> None:
        #: Invalidates queued deadline entries when the rate changes.
        self.gen = 0
        self.reinit(
            fid, src, dst, edges, nbytes, on_complete, start_time, tag, phase
        )

    def reinit(
        self,
        fid: int,
        src: str,
        dst: str,
        edges: Tuple[Edge, ...],
        nbytes: float,
        on_complete: Callable[["Flow"], None],
        start_time: float,
        tag: int = -1,
        phase: int = -1,
    ) -> None:
        """Recycle a pooled object for a fresh transfer."""
        self.fid = fid
        self.src = src
        self.dst = dst
        self.edges = edges
        self.size = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.on_complete = on_complete
        self.start_time = start_time
        self.end_time: Optional[float] = None
        self.tag = tag
        self.phase = phase
        self.gen += 1
        #: Simulated time up to which ``remaining`` is accounted.
        self.updated = start_time
        #: Rate under which the live deadline-heap entry was computed
        #: (0.0 = no live entry).  A solve that lands on the same rate
        #: keeps the entry: the completion instant is unchanged.
        self.drate = 0.0


class FlowNetwork:
    """The cluster's links plus the active flow set and rate solver."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        params: NetworkParams,
        oracle: Optional[PathOracle] = None,
        link_bandwidths: Optional[Dict[Tuple[str, str], float]] = None,
        bus: Optional[EventBus] = None,
        injector=None,
    ) -> None:
        """*link_bandwidths* optionally overrides the uniform link speed
        per physical link; keys may name either orientation and apply to
        both directed edges (full-duplex links).  *bus* is an optional
        telemetry bus: flow starts/finishes and per-edge occupancy
        changes are published to it (``None`` = zero overhead).
        *injector* is an optional
        :class:`~repro.faults.injector.FaultInjector`: edge capacities
        are scaled by its per-edge factor and rates are re-solved at
        every fault boundary (degradation onset/clearance)."""
        self.engine = engine
        self.bus = bus
        self.injector = injector
        self.topology = topology
        self.params = params
        self.oracle = oracle if oracle is not None else PathOracle(topology)
        self._edge_bandwidth: Dict[Edge, float] = {}
        if link_bandwidths:
            for (u, v), bw in link_bandwidths.items():
                if bw <= 0:
                    raise SimulationError(
                        f"bandwidth for link ({u!r}, {v!r}) must be positive"
                    )
                if v not in topology.neighbors(u):
                    raise SimulationError(
                        f"no physical link between {u!r} and {v!r}"
                    )
                self._edge_bandwidth[(u, v)] = bw
                self._edge_bandwidth[(v, u)] = bw
        self._flows: Dict[int, Flow] = {}
        self._edge_flows: Dict[Edge, Set[int]] = {}
        #: First-seen rank per edge: the component solvers scan edges
        #: in this order so tie-breaks match the reference's dict scan.
        self._edge_order: Dict[Edge, int] = {}
        # Endpoint edges (machine uplinks/downlinks) suffer the incast
        # collapse; switch-to-switch trunks share fluidly.
        self._endpoint_edge: Dict[Edge, bool] = {
            (u, v): topology.is_machine(u) or topology.is_machine(v)
            for u, v in topology.directed_edges()
        }
        self._next_fid = 0
        self._dirty = False
        self._allocator = make_allocator(params.allocator, self)
        #: (deadline, fid, flow.gen) completion heap; entries whose fid
        #: is gone or whose gen lags the flow's are stale and skipped.
        self._deadlines: List[Tuple[float, int, int]] = []
        self._timer_target = math.inf
        self._timer_epoch = 0
        self._pool: Optional[List[Flow]] = [] if params.pool_flows else None
        # Statistics for the invariant tests and reports.
        self.bytes_injected = 0.0
        self.bytes_delivered = 0.0
        self.peak_concurrent_flows = 0
        self.max_edge_multiplexing = 0
        self.flow_pool_reuses = 0
        #: Bytes actually transported per directed edge.
        self.edge_bytes: Dict[Edge, float] = {}
        # Fault boundaries are rate-change instants: re-solve max-min
        # whenever a link degrades, fails or recovers so every flow's
        # piecewise-constant rate stays exact.  Capacities change
        # globally, so the whole flow set is dirtied.
        if injector is not None:
            for t in injector.boundaries():
                if t > 0:
                    self.engine.schedule(t, self._boundary_resolve)
        # Metric handles captured once; None handles keep the hot paths
        # at one test per site (see repro.obs.metrics_registry).
        registry = active_registry()
        if registry is not None:
            self._m_resolves = registry.counter(
                "network.resolves_total", "Max-min rate re-solves"
            )
            self._m_flowset = registry.counter(
                "network.flow_set_changes", "Flow-set / rate-change instants"
            )
            self._m_touched = registry.histogram(
                "network.resolve_touched", "Flow x link pairs per re-solve"
            )
            self._m_waterfill = registry.histogram(
                "network.waterfill_iterations", "Progressive-filling rounds"
            )
            self._m_saturated = registry.histogram(
                "network.saturated_links", "Edges frozen per re-solve"
            )
            self._m_inflight = registry.gauge(
                "network.flows_in_flight", "Active flows after a settle"
            )
            self._m_component = registry.histogram(
                "network.component_flows", "Flows re-rated per solve"
            )
            self._m_full = registry.counter(
                "network.full_resolves", "Solves covering the whole flow set"
            )
            self._m_pool = registry.counter(
                "network.flow_pool_reuses", "Flow objects recycled from the pool"
            )
        else:
            self._m_resolves = None
            self._m_flowset = None
            self._m_touched = None
            self._m_waterfill = None
            self._m_saturated = None
            self._m_inflight = None
            self._m_component = None
            self._m_full = None
            self._m_pool = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def start_flow(
        self,
        src: str,
        dst: str,
        nbytes: float,
        on_complete: Callable[[Flow], None],
        *,
        tag: int = -1,
        phase: int = -1,
    ) -> Flow:
        """Inject a transfer of *nbytes* from *src* to *dst*.

        *on_complete* fires (via the engine) when the last byte arrives.
        *tag*/*phase* identify the carrying message for telemetry.
        """
        if nbytes <= 0:
            raise SimulationError(f"flow size must be positive, got {nbytes}")
        edges = self.oracle.path_edges(src, dst)
        if not edges:
            raise SimulationError(f"no path from {src!r} to {dst!r}")
        now = self.engine.now
        fid = self._next_fid
        self._next_fid += 1
        pool = self._pool
        if pool:
            flow = pool.pop()
            flow.reinit(
                fid, src, dst, edges, nbytes, on_complete, now, tag, phase
            )
            self.flow_pool_reuses += 1
            if self._m_pool is not None:
                self._m_pool.value += 1
        else:
            flow = Flow(
                fid, src, dst, edges, nbytes, on_complete, now, tag, phase
            )
        self._flows[fid] = flow
        edge_flows = self._edge_flows
        order = self._edge_order
        for e in edges:
            fids = edge_flows.get(e)
            if fids is None:
                edge_flows[e] = fids = set()
                order[e] = len(order)
            fids.add(fid)
        self.bytes_injected += nbytes
        if len(self._flows) > self.peak_concurrent_flows:
            self.peak_concurrent_flows = len(self._flows)
        if self.bus is not None:
            self.bus.publish(
                FlowStarted(
                    now, fid, src, dst, flow.size, edges,
                    flow.tag, flow.phase,
                )
            )
            for e in edges:
                self.bus.publish(
                    LinkOccupancy(now, e, len(edge_flows[e]))
                )
        self._allocator.note_edges_dirty(edges)
        self._mark_dirty()
        return flow

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flow_rate(self, flow: Flow) -> float:
        return flow.rate

    @property
    def full_resolves(self) -> int:
        """Solves that covered the entire flow set (see allocator)."""
        return self._allocator.full_solves

    def sync_progress(self) -> None:
        """Bring every active flow's byte accounting up to ``now``.

        Rates and completions are always exact; only the byte ledgers
        (``bytes_delivered``/``edge_bytes``/``Flow.remaining``) are
        lazy.  Call this before reading them while flows are still in
        flight (the executor does, for stalled/crashed runs)."""
        now = self.engine.now
        for flow in self._flows.values():
            if flow.updated != now:
                self._advance_flow(flow, now)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _mark_dirty(self) -> None:
        if not self._dirty:
            self._dirty = True
            self.engine.defer(self._settle)
            if self._m_flowset is not None:
                self._m_flowset.value += 1

    def _boundary_resolve(self) -> None:
        """Fault boundary: capacities changed globally — re-solve all."""
        self._allocator.note_all_dirty()
        self._mark_dirty()

    def _advance_flow(self, flow: Flow, now: float) -> None:
        """Account bytes *flow* moved since its last catch-up."""
        dt = now - flow.updated
        if dt > 0.0 and flow.rate > 0.0:
            before = flow.remaining
            after = before - flow.rate * dt
            if after < 0.0:
                after = 0.0
            flow.remaining = after
            moved = before - after
            self.bytes_delivered += moved
            edge_bytes = self.edge_bytes
            for e in flow.edges:
                edge_bytes[e] = edge_bytes.get(e, 0.0) + moved
        flow.updated = now

    def _settle(self) -> None:
        """Recompute rates for every flow a change could have touched.

        Runs at the end of the engine's same-timestamp batch (see
        :meth:`Engine.defer`), so any number of same-instant flow-set
        changes produce one solve.  Completion callbacks may start new
        flows at the same instant; the loop folds them into the scope
        until the instant is quiescent, then solves once.
        """
        if not self._dirty:
            return
        now = self.engine.now
        alloc = self._allocator
        full_before = alloc.full_solves
        scope: Dict[int, Flow] = {}
        while self._dirty:
            self._dirty = False
            if self._m_resolves is not None:
                self._m_resolves.value += 1
            alloc.collect_scope(scope)
            due: List[Flow] = []
            for flow in scope.values():
                if flow.updated != now:
                    self._advance_flow(flow, now)
                if flow.remaining <= _EPSILON_BYTES:
                    due.append(flow)
            if due:
                due.sort(key=lambda f: f.fid)
                for flow in due:
                    scope.pop(flow.fid, None)
                    self._complete_flow(flow)
        if self._m_inflight is not None:
            self._m_inflight.value = len(self._flows)
        if not scope:
            return
        touched, iterations, saturated = alloc.solve(scope, now)
        if self._m_waterfill is not None:
            self._m_touched.observe(touched)
            self._m_waterfill.observe(iterations)
            self._m_saturated.observe(saturated)
            self._m_component.observe(len(scope))
            full_delta = alloc.full_solves - full_before
            if full_delta:
                self._m_full.value += full_delta
        deadlines = self._deadlines
        pushes: List[Tuple[float, int, int]] = []
        for flow in scope.values():
            rate = flow.rate
            if rate == flow.drate:
                # Unchanged rate: the live entry (if any) still names
                # the right completion instant — no heap churn.
                continue
            flow.gen += 1
            flow.drate = rate
            if rate > 0.0:
                pushes.append((now + flow.remaining / rate, flow.fid, flow.gen))
            # rate == 0: frozen behind a failed link; a fault boundary
            # (recovery) or the stall watchdog wakes us.
        if len(pushes) * 2 >= len(deadlines):
            # Most of the heap just went stale (every re-rated flow's
            # old entry has a lagging gen).  Rebuilding — live survivors
            # plus the new entries, one O(n) heapify — is cheaper than
            # n pushes into a stale-laden heap and also purges the
            # garbage, keeping the heap near the live-flow count.
            flows = self._flows
            live = [
                entry
                for entry in deadlines
                if (f := flows.get(entry[1])) is not None and f.gen == entry[2]
            ]
            live.extend(pushes)
            heapq.heapify(live)
            self._deadlines = live
        else:
            for entry in pushes:
                heapq.heappush(deadlines, entry)
        self._arm_timer()

    def _arm_timer(self) -> None:
        """Schedule the completion timer for the earliest live deadline.

        Each arming that actually schedules bumps ``_timer_epoch``,
        instantly invalidating every previously scheduled timer event:
        we only schedule when the new deadline is *earlier* than the
        outstanding target, so the newest event is always the one that
        should fire, and superseded events die in O(1) at dispatch.
        """
        deadlines = self._deadlines
        flows = self._flows
        while deadlines:
            d, fid, gen = deadlines[0]
            flow = flows.get(fid)
            if flow is None or flow.gen != gen:
                heapq.heappop(deadlines)
                continue
            if d < self._timer_target:
                self._timer_target = d
                self._timer_epoch += 1
                epoch = self._timer_epoch
                self.engine.schedule(
                    max(0.0, d - self.engine.now),
                    lambda: self._on_deadline(epoch),
                )
            return

    def _on_deadline(self, epoch: int) -> None:
        """Completion timer: finish every flow whose deadline is due.

        Stale heap entries (completed flows, superseded rates) are
        dropped lazily via the fid lookup and generation check — a
        flow can never be completed twice, however events batch.
        """
        if epoch != self._timer_epoch:
            return  # superseded by a later arming at an earlier time
        self._timer_target = math.inf
        now = self.engine.now
        deadlines = self._deadlines
        flows = self._flows
        completed = False
        while deadlines and deadlines[0][0] <= now + _EPSILON_TIME:
            d, fid, gen = heapq.heappop(deadlines)
            flow = flows.get(fid)
            if flow is None or flow.gen != gen:
                continue
            if flow.updated != now:
                self._advance_flow(flow, now)
            # Done when the byte residue is negligible — or when it
            # would drain within the timer's own resolution.  Without
            # the second clause a sub-ulp residue requeues a deadline
            # at (float-)``now`` forever: the flow can't advance twice
            # at one timestamp, so nothing ever shrinks the residue.
            if (
                flow.remaining <= _EPSILON_BYTES
                or flow.remaining <= flow.rate * _EPSILON_TIME
            ):
                edges = flow.edges
                self._complete_flow(flow)
                self._allocator.note_edges_dirty(edges)
                completed = True
            else:
                # Fired a rounding step early: requeue and retry at the
                # recomputed deadline (a fresh timer, not this batch).
                heapq.heappush(
                    deadlines, (now + flow.remaining / flow.rate, fid, gen)
                )
                break
        if completed:
            self._mark_dirty()
        self._arm_timer()

    def _complete_flow(self, flow: Flow) -> None:
        fid = flow.fid
        if self._flows.get(fid) is not flow:
            return  # already completed
        del self._flows[fid]
        for e in flow.edges:
            self._edge_flows[e].discard(fid)
        flow.remaining = 0.0
        flow.rate = 0.0
        flow.gen += 1
        now = self.engine.now
        flow.end_time = now
        if self.bus is not None:
            self.bus.publish(
                FlowFinished(
                    now, fid, flow.src, flow.dst, flow.size,
                    flow.start_time, flow.tag, flow.phase,
                )
            )
            for e in flow.edges:
                self.bus.publish(
                    LinkOccupancy(now, e, len(self._edge_flows[e]))
                )
        flow.on_complete(flow)
        if self._pool is not None:
            # Only after the callback: the handle it received must not
            # mutate under it.  The object stays readable (end_time,
            # size, ...) until a later start_flow recycles it.
            self._pool.append(flow)
