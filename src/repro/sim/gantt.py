"""Text timelines from execution traces.

Turns a :class:`~repro.sim.trace.Trace` into terminal-friendly views:

* :func:`render_rank_gantt` — one row per rank, time binned across the
  width, showing when each rank posts sends/receives, waits, and syncs.
  The drift of unsynchronized phased algorithms — and the lockstep of
  the pair-wise-synchronized schedule — is visible at a glance.
* :func:`phase_latency_table` — per schedule phase: first activity,
  last activity, span; quantifies phase overlap.

Legend for the gantt cells (when several events share a bin the most
"interesting" wins, in this order):

    ``Y`` sync wait   ``s`` send post   ``r`` recv post
    ``w`` waitall completion   ``.`` other activity   space = idle
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.sim.trace import Trace, TraceRecord
from repro.units import seconds_to_ms

#: Cell priority: later entries overwrite earlier ones within a bin.
_GLYPH_PRIORITY = {
    "": 0,
    ".": 1,
    "w": 2,
    "r": 3,
    "s": 4,
    "Y": 5,
}

_WHAT_TO_GLYPH = {
    "post_send": "s",
    "post_recv": "r",
    "complete_send": "w",
    "complete_recv": "w",
    "waitall_done": "w",
    "sync_wait": "Y",
    "sync_recv": "Y",
    "sync_send": "s",
    "barrier": "w",
}


def render_rank_gantt(
    trace: Trace,
    ranks: Optional[Sequence[str]] = None,
    *,
    width: int = 72,
    t0: float = 0.0,
    t1: Optional[float] = None,
) -> str:
    """Render per-rank activity rows over binned simulated time.

    *t0*/*t1* optionally zoom the view to a time window (seconds); the
    default covers the whole trace.
    """
    if not trace.records:
        raise ReproError("trace is empty; run with trace=True")
    if t1 is None:
        t1 = max(r.time for r in trace.records)
    records = trace.between(t0, t1)
    if not records:
        raise ReproError(f"no trace records in window [{t0}, {t1}]")
    if ranks is None:
        seen: List[str] = []
        for r in records:
            if r.rank not in seen:
                seen.append(r.rank)
        ranks = sorted(seen)
    span = t1 - t0
    span = span if span > 0 else 1e-9
    rows: Dict[str, List[str]] = {rank: [""] * width for rank in ranks}
    rank_set = set(ranks)
    for record in records:
        if record.rank not in rank_set:
            continue
        cell = min(width - 1, int((record.time - t0) / span * width))
        glyph = _WHAT_TO_GLYPH.get(record.what, ".")
        row = rows[record.rank]
        if _GLYPH_PRIORITY[glyph] > _GLYPH_PRIORITY[row[cell]]:
            row[cell] = glyph
    name_width = max(len(r) for r in ranks)
    lines = [
        f"{seconds_to_ms(t0):g} {'-' * (width - 2)}> {seconds_to_ms(t1):.2f} ms "
        "(s=send r=recv w=complete Y=sync)"
    ]
    for rank in ranks:
        body = "".join(c if c else " " for c in rows[rank])
        lines.append(f"{rank:>{name_width}} |{body}|")
    return "\n".join(lines)


def phase_latency_table(trace: Trace) -> str:
    """Per-phase first/last activity, span and record count, in ms."""
    spans = trace.phase_spans()
    if not spans:
        raise ReproError("trace has no phase-tagged records")
    lines = [
        f"{'phase':>6} {'start ms':>10} {'end ms':>10} {'span ms':>9} {'ops':>6}"
    ]
    for phase in sorted(spans):
        lo, hi = spans[phase]
        ops = len(trace.of_phase(phase))
        lines.append(
            f"{phase:>6} {seconds_to_ms(lo):>10.2f} {seconds_to_ms(hi):>10.2f} "
            f"{seconds_to_ms(hi - lo):>9.2f} {ops:>6}"
        )
    return "\n".join(lines)


def phase_overlap_fraction(trace: Trace) -> float:
    """Fraction of consecutive phase pairs whose activity spans overlap.

    Note the spans include operation *posting*: ranks legitimately post
    receives for future phases early (pipelining), so even a perfectly
    synchronized run shows high overlap.  This measures pipelining
    depth, not contention — for contention use the executor's
    ``max_edge_multiplexing`` (1 = contention-free execution).
    """
    spans = trace.phase_spans()
    phases = sorted(spans)
    if len(phases) < 2:
        return 0.0
    overlapping = sum(
        1
        for a, b in zip(phases, phases[1:])
        if spans[b][0] < spans[a][1]
    )
    return overlapping / (len(phases) - 1)
