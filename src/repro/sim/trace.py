"""Execution tracing for simulator runs.

A :class:`Trace` collects timestamped records — operation begin/end per
rank, flow lifetimes — so tests can assert on ordering (e.g. "the sync
message really delayed the conflicting send") and the examples can
print per-phase timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    rank: str
    what: str  # e.g. "post_isend", "complete_recv", "barrier"
    peer: str = ""
    tag: int = 0
    phase: int = -1


@dataclass
class Trace:
    """An append-only record list with simple queries."""

    enabled: bool = True
    records: List[TraceRecord] = field(default_factory=list)

    def add(
        self,
        time: float,
        rank: str,
        what: str,
        peer: str = "",
        tag: int = 0,
        phase: int = -1,
    ) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, rank, what, peer, tag, phase))

    def of_rank(self, rank: str) -> List[TraceRecord]:
        return [r for r in self.records if r.rank == rank]

    def of_kind(self, what: str) -> List[TraceRecord]:
        return [r for r in self.records if r.what == what]

    def first(self, rank: str, what: str, tag: Optional[int] = None) -> Optional[TraceRecord]:
        for r in self.records:
            if r.rank == rank and r.what == what and (tag is None or r.tag == tag):
                return r
        return None

    def phase_spans(self) -> Dict[int, Tuple[float, float]]:
        """Per schedule phase: (first record time, last record time)."""
        spans: Dict[int, Tuple[float, float]] = {}
        for r in self.records:
            if r.phase < 0:
                continue
            if r.phase not in spans:
                spans[r.phase] = (r.time, r.time)
            else:
                lo, hi = spans[r.phase]
                spans[r.phase] = (min(lo, r.time), max(hi, r.time))
        return spans

    def __len__(self) -> int:
        return len(self.records)
