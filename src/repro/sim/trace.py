"""Execution tracing for simulator runs.

A :class:`Trace` collects timestamped records — operation begin/end per
rank, flow lifetimes — so tests can assert on ordering (e.g. "the sync
message really delayed the conflicting send") and the examples can
print per-phase timelines.

Memory behaviour: by default the record list is **unbounded** (a full
AAPC trace is a few records per operation, small for the paper's
topologies).  For long-running or production-scale use pass
``max_records`` to turn the store into a ring buffer that keeps only
the most recent records — the flight-recorder discipline — with
:attr:`Trace.dropped` counting evictions.  A disabled trace
(``enabled=False``) short-circuits before any record is constructed, so
tracing costs one attribute check per event when off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    rank: str
    what: str  # e.g. "post_isend", "complete_recv", "barrier"
    peer: str = ""
    tag: int = 0
    phase: int = -1


@dataclass
class Trace:
    """An append-only record store with simple queries.

    Records may be appended directly (:meth:`add`), or the trace can be
    subscribed to an :class:`~repro.obs.bus.EventBus` that carries
    :class:`TraceRecord` events (:meth:`attach`) — the executor uses
    the bus route so every consumer sees the same stream.
    """

    enabled: bool = True
    #: Ring-buffer capacity; ``None`` (the default) keeps every record.
    max_records: Optional[int] = None
    records: Union[List[TraceRecord], Deque[TraceRecord]] = field(
        default_factory=list
    )
    #: Records evicted by the ring buffer (0 when unbounded).
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.max_records is not None:
            if self.max_records <= 0:
                raise ValueError("max_records must be positive")
            self.records = deque(self.records, maxlen=self.max_records)

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def add(
        self,
        time: float,
        rank: str,
        what: str,
        peer: str = "",
        tag: int = 0,
        phase: int = -1,
    ) -> None:
        if not self.enabled:
            return
        self.ingest(TraceRecord(time, rank, what, peer, tag, phase))

    def ingest(self, record: TraceRecord) -> None:
        """Append an already-built record (the bus-subscriber path)."""
        if not self.enabled:
            return
        if (
            self.max_records is not None
            and len(self.records) == self.max_records
        ):
            self.dropped += 1
        self.records.append(record)

    def attach(self, bus) -> None:
        """Subscribe this trace to *bus*'s :class:`TraceRecord` events."""
        bus.subscribe(TraceRecord, self.ingest)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def of_rank(self, rank: str) -> List[TraceRecord]:
        return [r for r in self.records if r.rank == rank]

    def of_kind(self, what: str) -> List[TraceRecord]:
        return [r for r in self.records if r.what == what]

    def of_phase(self, phase: int) -> List[TraceRecord]:
        """Records tagged with schedule *phase* (in append order)."""
        return [r for r in self.records if r.phase == phase]

    def between(self, t0: float, t1: float) -> List[TraceRecord]:
        """Records with ``t0 <= time <= t1`` (both ends inclusive)."""
        return [r for r in self.records if t0 <= r.time <= t1]

    def first(self, rank: str, what: str, tag: Optional[int] = None) -> Optional[TraceRecord]:
        for r in self.records:
            if r.rank == rank and r.what == what and (tag is None or r.tag == tag):
                return r
        return None

    def phase_spans(self) -> Dict[int, Tuple[float, float]]:
        """Per schedule phase: (first record time, last record time)."""
        spans: Dict[int, Tuple[float, float]] = {}
        for r in self.records:
            if r.phase < 0:
                continue
            if r.phase not in spans:
                spans[r.phase] = (r.time, r.time)
            else:
                lo, hi = spans[r.phase]
                spans[r.phase] = (min(lo, r.time), max(hi, r.time))
        return spans

    def __len__(self) -> int:
        return len(self.records)
