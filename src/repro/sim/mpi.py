"""Simulated MPI point-to-point layer.

Models the transport behaviour that the paper's algorithms exercise:

* **Rendezvous** for messages above the eager threshold: the transfer
  (a network flow) starts only once *both* sides have posted, after a
  handshake latency; both requests complete when the last byte lands.
  This matches large-message TCP behaviour once socket buffers are
  exhausted and is the regime AAPC scheduling targets.
* **Eager** for small messages (and the zero-byte pair-wise syncs): the
  sender's request completes right after posting; the receiver's
  completes at ``max(send_post + eager_latency, recv_post)``.  Eager
  messages do not consume modelled bandwidth.
* **Matching** by ``(source, tag, sync-ness)`` with FIFO order within a
  key, like MPI's per-communicator matching.
* **Barrier** as a dissemination-style delay after the last arrival.

Per-operation software overheads (with seeded jitter) are charged by the
executor, not here; this layer only handles matching and transfer
timing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.core.program import Block
from repro.obs.metrics_registry import active_registry
from repro.sim.engine import Engine, SimEvent
from repro.sim.network import Flow, FlowNetwork
from repro.sim.params import NetworkParams


class Request:
    """Handle for a pending send or receive."""

    __slots__ = ("event", "kind", "rank", "peer", "tag", "nbytes", "blocks", "post_time", "arrival_event", "phase")

    def __init__(
        self,
        event: SimEvent,
        kind: str,
        rank: str,
        peer: str,
        tag: int,
        nbytes: int,
        blocks: Tuple[Block, ...],
        phase: int = -1,
    ) -> None:
        self.event = event
        self.kind = kind
        self.rank = rank
        self.peer = peer
        self.tag = tag
        self.nbytes = nbytes
        self.blocks = blocks
        self.post_time = event.engine.now
        self.phase = phase
        #: For buffered sends: triggered when the last byte reaches the
        #: receiving host (independent of a posted receive).
        self.arrival_event: "SimEvent | None" = None

    @property
    def done(self) -> bool:
        return self.event.triggered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request({self.kind} {self.rank}<->{self.peer} tag={self.tag} "
            f"bytes={self.nbytes} done={self.done})"
        )


#: Matching key: (sender, receiver, tag, is_sync).
_MatchKey = Tuple[str, str, int, bool]


class SimMPI:
    """Message matching and transfer timing over a :class:`FlowNetwork`."""

    def __init__(
        self,
        engine: Engine,
        network: FlowNetwork,
        params: NetworkParams,
        *,
        injector=None,
        bus=None,
    ) -> None:
        """*injector* (a :class:`~repro.faults.injector.FaultInjector`)
        turns on the resilience protocol for sync messages: each
        transmission attempt may be dropped, delayed or duplicated, and
        lost attempts are retransmitted with bounded exponential backoff
        (``params.sync_retry_timeout`` / ``sync_backoff`` /
        ``sync_backoff_cap`` / ``sync_max_retries``)."""
        self.engine = engine
        self.network = network
        self.params = params
        self.injector = injector
        self.bus = bus
        self._unmatched_sends: Dict[_MatchKey, Deque[Request]] = {}
        self._unmatched_recvs: Dict[_MatchKey, Deque[Request]] = {}
        # Barrier state: name -> (arrived events, release event)
        self._barrier_waiting: List[SimEvent] = []
        self._barrier_expected = 0
        self.messages_matched = 0
        self.flows_started = 0
        # Metric handles captured once; None handles cost one test per
        # sync operation (see repro.obs.metrics_registry).
        registry = active_registry()
        if registry is not None:
            self._m_syncs_posted = registry.counter(
                "mpi.syncs_posted", "Pair-wise sync sends posted"
            )
            self._m_syncs_retired = registry.counter(
                "mpi.syncs_retired", "Sync deliveries completed"
            )
            self._m_retransmits = registry.counter(
                "mpi.retransmits", "Sync retransmission attempts"
            )
        else:
            self._m_syncs_posted = None
            self._m_syncs_retired = None
            self._m_retransmits = None
        #: Sync deliveries still outstanding (watchdog diagnosis):
        #: key (src, dst, tag) -> {"phase", "attempts", "state"}.
        self.pending_syncs: Dict[Tuple[str, str, int], Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def isend(
        self,
        rank: str,
        peer: str,
        tag: int,
        nbytes: int,
        blocks: Tuple[Block, ...] = (),
        *,
        sync: bool = False,
        phase: int = -1,
    ) -> Request:
        """Post a non-blocking send from *rank* to *peer*."""
        req = Request(
            self.engine.event(), "send", rank, peer, tag, nbytes, blocks, phase
        )
        if sync and self._m_syncs_posted is not None:
            self._m_syncs_posted.value += 1
        mode = "eager" if sync else self.params.transfer_mode(nbytes)
        if mode in ("eager", "buffered"):
            # The transport buffers the whole message: the sender's
            # request completes at post time, independent of matching.
            req.event.trigger(req)
        if mode == "buffered":
            # The flow drains toward the receiver immediately (TCP
            # pushes without waiting for a posted receive); arrival is
            # recorded so a late-posted receive completes instantly.
            self._launch_buffered(req)
        key: _MatchKey = (rank, peer, tag, sync)
        recvs = self._unmatched_recvs.get(key)
        if recvs:
            self._matched(req, recvs.popleft(), sync)
        else:
            self._unmatched_sends.setdefault(key, deque()).append(req)
        return req

    def irecv(
        self,
        rank: str,
        peer: str,
        tag: int,
        *,
        sync: bool = False,
        phase: int = -1,
    ) -> Request:
        """Post a non-blocking receive at *rank* from *peer*."""
        req = Request(
            self.engine.event(), "recv", rank, peer, tag, 0, (), phase
        )
        key: _MatchKey = (peer, rank, tag, sync)
        sends = self._unmatched_sends.get(key)
        if sends:
            self._matched(sends.popleft(), req, sync)
        else:
            self._unmatched_recvs.setdefault(key, deque()).append(req)
        return req

    def _matched(self, send: Request, recv: Request, sync: bool) -> None:
        self.messages_matched += 1
        recv.nbytes = send.nbytes
        recv.blocks = send.blocks
        mode = "eager" if sync else self.params.transfer_mode(send.nbytes)
        if mode == "eager":
            self._eager_transfer(send, recv, sync)
        elif mode == "buffered":
            assert send.arrival_event is not None
            send.arrival_event.on_trigger(lambda _v: recv.event.trigger(recv))
        else:
            self._rendezvous_transfer(send, recv)

    def _eager_transfer(self, send: Request, recv: Request, sync: bool) -> None:
        """Small message: sender completed at post, receiver after latency."""
        if sync and self.injector is not None:
            self._resilient_sync_transfer(send, recv)
            return
        latency = self.params.sync_latency if sync else self.params.eager_latency
        arrival = send.post_time + latency
        delay = max(0.0, arrival - self.engine.now)
        if sync and self._m_syncs_retired is not None:
            retired = self._m_syncs_retired

            def deliver() -> None:
                retired.value += 1
                recv.event.trigger(recv)

            self.engine.schedule(delay, deliver)
        else:
            self.engine.schedule(delay, lambda: recv.event.trigger(recv))

    # ------------------------------------------------------------------
    # resilience protocol for sync messages (fault injection active)
    # ------------------------------------------------------------------
    def _resilient_sync_transfer(self, send: Request, recv: Request) -> None:
        """Deliver a sync message across an unreliable control channel.

        Each transmission attempt consults the fault injector; lost
        attempts are retransmitted after a bounded exponential backoff.
        The whole attempt schedule is resolved now (the draws are
        deterministic in posting order) and the arrival — or
        abandonment, once the retry budget is spent — is scheduled on
        the engine.  Duplicate arrivals are delivered and discarded
        idempotently, like a real sequence-numbered control protocol.
        """
        from repro.faults.events import SyncAbandoned, SyncRetransmit
        from repro.faults.injector import DROP, DUPLICATE

        params = self.params
        injector = self.injector
        key = (send.rank, send.peer, send.tag)
        entry: Dict[str, object] = {
            "phase": send.phase,
            "attempts": 1,
            "state": "in-flight",
        }
        self.pending_syncs[key] = entry

        send_time = send.post_time
        arrivals: List[float] = []
        delivered = None
        for attempt in range(params.sync_max_retries + 1):
            if attempt > 0:
                injector.stats.sync_retransmits += 1
                if self._m_retransmits is not None:
                    self._m_retransmits.value += 1
                entry["attempts"] = attempt + 1
                if self.bus is not None:
                    self.bus.publish(
                        SyncRetransmit(
                            send_time, send.rank, send.peer, send.tag,
                            attempt, send_time - send.post_time,
                        )
                    )
            fate, extra = injector.sync_fate(
                send.rank, send.peer, send.tag, send_time, attempt
            )
            if fate != DROP:
                delivered = send_time + params.sync_latency + extra
                arrivals.append(delivered)
                if fate == DUPLICATE:
                    # The duplicate copy trails the original slightly.
                    arrivals.append(delivered + params.sync_latency)
                break
            send_time += min(
                params.sync_retry_timeout * (params.sync_backoff ** attempt),
                params.sync_backoff_cap,
            )

        if delivered is None:
            attempts = params.sync_max_retries + 1
            entry["state"] = "abandoned"
            entry["attempts"] = attempts
            injector.stats.syncs_abandoned += 1
            if self.bus is not None:
                self.bus.publish(
                    SyncAbandoned(
                        send_time, send.rank, send.peer, send.tag, attempts
                    )
                )
            return

        def arrive() -> None:
            if not recv.event.triggered:  # duplicates are discarded
                self.pending_syncs.pop(key, None)
                if self._m_syncs_retired is not None:
                    self._m_syncs_retired.value += 1
                recv.event.trigger(recv)

        for arrival in arrivals:
            self.engine.schedule(max(0.0, arrival - self.engine.now), arrive)

    def _launch_buffered(self, send: Request) -> None:
        """Start a buffered send's flow right away (TCP-push behaviour)."""
        self.flows_started += 1
        send.arrival_event = self.engine.event()

        def on_flow_done(_flow: Flow) -> None:
            send.arrival_event.trigger(send)

        def launch() -> None:
            self.network.start_flow(
                send.rank, send.peer, float(send.nbytes), on_flow_done,
                tag=send.tag, phase=send.phase,
            )

        self.engine.schedule(self.params.eager_latency, launch)

    def _rendezvous_transfer(self, send: Request, recv: Request) -> None:
        """Large message: handshake, then a bandwidth-consuming flow."""
        self.flows_started += 1

        def on_flow_done(_flow: Flow) -> None:
            send.event.trigger(send)
            recv.event.trigger(recv)

        def launch() -> None:
            self.network.start_flow(
                send.rank, send.peer, float(send.nbytes), on_flow_done,
                tag=send.tag, phase=send.phase,
            )

        self.engine.schedule(self.params.rendezvous_latency, launch)

    # ------------------------------------------------------------------
    def barrier(self, num_ranks: int) -> SimEvent:
        """Join a barrier over *num_ranks* ranks; returns the release event.

        All participating ranks must call with the same *num_ranks*.
        Released ``barrier_latency`` after the last arrival.
        """
        if self._barrier_expected == 0:
            self._barrier_expected = num_ranks
        elif self._barrier_expected != num_ranks:
            raise SimulationError(
                f"barrier size mismatch: {self._barrier_expected} vs {num_ranks}"
            )
        event = self.engine.event()
        self._barrier_waiting.append(event)
        if len(self._barrier_waiting) == self._barrier_expected:
            waiting, self._barrier_waiting = self._barrier_waiting, []
            self._barrier_expected = 0
            delay = self.params.barrier_latency

            def release() -> None:
                for ev in waiting:
                    ev.trigger(None)

            self.engine.schedule(delay, release)
        return event

    # ------------------------------------------------------------------
    def unmatched_sync_edges(self) -> List[Tuple[str, str, int, int, str]]:
        """Sync operations with no counterpart yet (stall diagnosis).

        Returns ``(src, dst, tag, phase, state)`` tuples: ``state`` is
        ``"unmatched-recv"`` when the receiver is waiting but the sender
        never posted (it is blocked upstream), ``"unmatched-send"`` for
        the reverse.
        """
        out: List[Tuple[str, str, int, int, str]] = []
        for (src, dst, tag, is_sync), reqs in self._unmatched_recvs.items():
            if is_sync:
                for req in reqs:
                    out.append((src, dst, tag, req.phase, "unmatched-recv"))
        for (src, dst, tag, is_sync), reqs in self._unmatched_sends.items():
            if is_sync:
                for req in reqs:
                    out.append((src, dst, tag, req.phase, "unmatched-send"))
        return out

    # ------------------------------------------------------------------
    def assert_drained(self) -> None:
        """Raise if unmatched operations remain (deadlock diagnosis)."""
        leftovers = [
            (key, len(reqs))
            for table in (self._unmatched_sends, self._unmatched_recvs)
            for key, reqs in table.items()
            if reqs
        ]
        if leftovers:
            raise SimulationError(
                f"unmatched operations at end of run: {leftovers[:10]}"
            )
