"""Max-min rate solvers: the reference filler and the incremental one.

Two interchangeable allocators compute the max-min fair rate vector for
the active flow set (see :mod:`repro.sim.network` for the model):

* :class:`ReferenceAllocator` — the original, deliberately simple
  progressive filling over **every** directed edge at **every**
  rate-change instant.  O(flows x links) per re-solve; kept as the
  trusted oracle for the differential suite
  (``tests/sim/test_allocator_differential.py``).
* :class:`IncrementalAllocator` — tracks the set of *dirty* edges
  (edges whose flow set changed since the last solve), expands it to
  the connected component of the flow/edge incidence graph, and
  re-solves **only that component**.  Max-min allocation decomposes
  exactly over these components — flows in different components share
  no edge, so the filling rounds of one component never touch the
  state of another — hence untouched flows keep their previous rates
  unchanged.  Components above a small size threshold run a
  numpy-vectorized waterfill; single-flow components (every component
  of a contention-free schedule) take an allocation-free fast path.

Both allocators produce the same rate vector up to float rounding: the
vectorized waterfill freezes the same share levels in the same order
(component edges are scanned in the reference's global first-seen
order, exact ties — ubiquitous in symmetric AAPC flow sets — are
frozen together, which is the identical fixpoint), so differences stay
at the accumulation-order ulp level — bounded well inside the
differential suite's 1e-9 tolerance.  Pick one via
:attr:`NetworkParams.allocator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.topology.graph import Edge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Flow, FlowNetwork

#: Components at or below this many flows use the pure-python filler:
#: the numpy setup cost only pays off once the arrays have some width.
_VECTORIZE_THRESHOLD = 12
#: Crossover to the vectorized filler: the python filler costs
#: O(touched + edges^2) per solve, the numpy one O(touched) C-level
#: setup plus a handful of array ops per share level.  Components with
#: more incidence pairs or more edges than these bounds go to numpy
#: (bounds picked from LAM-style dense measurements at 24-48 ranks,
#: where the two fillers break even).
_VECTORIZE_TOUCHED = 6144
_VECTORIZE_EDGES = 160


def _ragged_gather(
    ptr: "np.ndarray", idx: "np.ndarray", rows: "np.ndarray"
) -> "np.ndarray":
    """Concatenate CSR rows ``idx[ptr[r]:ptr[r+1]]`` for ``r`` in *rows*."""
    starts = ptr[rows]
    lens = ptr[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=idx.dtype)
    offs = np.repeat(starts, lens)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lens) - lens, lens
    )
    return idx[offs + ramp]


class BaseAllocator:
    """Shared dirty-tracking interface driven by :class:`FlowNetwork`."""

    name = "base"

    def __init__(self, network: "FlowNetwork") -> None:
        self.net = network
        #: Solves that covered the whole flow set (fault boundaries,
        #: and every reference solve).
        self.full_solves = 0

    # -- dirty tracking ------------------------------------------------
    def note_edges_dirty(self, edges: Iterable[Edge]) -> None:
        """The flow set of *edges* changed since the last solve."""

    def note_all_dirty(self) -> None:
        """Every edge must be re-solved (capacities changed globally)."""

    # -- solving -------------------------------------------------------
    def collect_scope(self, scope: Dict[int, "Flow"]) -> None:
        """Move the closure of the dirty set into *scope* and clear it.

        *scope* maps fid -> Flow and accumulates across calls (the
        settle loop re-collects after completion callbacks mutate the
        flow set).  Entries already present are kept.
        """
        raise NotImplementedError

    def solve(
        self, scope: Dict[int, "Flow"], now: float
    ) -> Tuple[int, int, int]:
        """Assign max-min rates to every flow in *scope*.

        Returns ``(touched, iterations, saturated)``: flow x link
        incidence pairs examined, filling rounds run, and edges frozen
        (the reference saturates exactly one edge per round; the
        vectorized filler batches exact ties, so rounds <= edges).
        """
        raise NotImplementedError


class ReferenceAllocator(BaseAllocator):
    """Full progressive filling over all edges — the trusted oracle."""

    name = "reference"

    def collect_scope(self, scope: Dict[int, "Flow"]) -> None:
        scope.update(self.net._flows)

    def solve(
        self, scope: Dict[int, "Flow"], now: float
    ) -> Tuple[int, int, int]:
        net = self.net
        params = net.params
        injector = net.injector
        self.full_solves += 1
        # Per-edge state: unfrozen flow count and available capacity.
        unfrozen_count: Dict[Edge, int] = {}
        available: Dict[Edge, float] = {}
        touched = 0
        for e, fids in net._edge_flows.items():
            n = len(fids)
            if n == 0:
                continue
            touched += n
            largest = max(net._flows[fid].size for fid in fids)
            unfrozen_count[e] = n
            capacity = params.effective_capacity(
                n,
                largest,
                net._endpoint_edge[e],
                line_bandwidth=net._edge_bandwidth.get(e),
            )
            if injector is not None:
                capacity *= injector.link_factor(e, now)
            available[e] = capacity
            if n > net.max_edge_multiplexing:
                net.max_edge_multiplexing = n
        frozen: Set[int] = set()
        for flow in scope.values():
            flow.rate = 0.0
        remaining_flows = len(scope)
        iterations = 0
        while remaining_flows > 0:
            iterations += 1
            # Find the tightest edge.
            best_edge: Optional[Edge] = None
            best_share = float("inf")
            for e, count in unfrozen_count.items():
                if count <= 0:
                    continue
                share = available[e] / count
                if share < best_share - 1e-15:
                    best_share = share
                    best_edge = e
            if best_edge is None:
                raise SimulationError(
                    "max-min allocation stalled with flows unassigned"
                )
            # Freeze every unfrozen flow crossing the tightest edge.
            for fid in list(net._edge_flows[best_edge]):
                if fid in frozen:
                    continue
                flow = net._flows[fid]
                flow.rate = best_share
                frozen.add(fid)
                remaining_flows -= 1
                for e in flow.edges:
                    unfrozen_count[e] -= 1
                    available[e] -= best_share
            unfrozen_count[best_edge] = 0
        return touched, iterations, iterations


class IncrementalAllocator(BaseAllocator):
    """Dirty-component re-solve with a vectorized waterfill."""

    name = "incremental"

    def __init__(self, network: "FlowNetwork") -> None:
        super().__init__(network)
        # Insertion-ordered so the component scan visits edges in the
        # same relative order as the reference's global dict scan (Edge
        # keys are string tuples whose *set* order would be
        # hash-randomized per process; dicts are deterministic).
        self._dirty_edges: Dict[Edge, None] = {}
        self._all_dirty = False
        # Dense-workload detector: consecutive closures that spanned
        # (nearly) the whole flow set, and a probe countdown for
        # noticing when the workload thins out again.
        self._dense_streak = 0
        self._dense_probe = 0

    # -- dirty tracking ------------------------------------------------
    def note_edges_dirty(self, edges: Iterable[Edge]) -> None:
        if self._all_dirty:
            return
        dirty = self._dirty_edges
        for e in edges:
            dirty[e] = None

    def note_all_dirty(self) -> None:
        self._all_dirty = True
        self._dirty_edges.clear()

    # -- solving -------------------------------------------------------
    def collect_scope(self, scope: Dict[int, "Flow"]) -> None:
        net = self.net
        if self._all_dirty:
            self._all_dirty = False
            self._dirty_edges.clear()
            scope.update(net._flows)
            self.full_solves += 1
            return
        dirty = self._dirty_edges
        if not dirty:
            return
        self._dirty_edges = {}
        edge_flows = net._edge_flows
        flows = net._flows
        # Dense workloads (unscheduled all-at-once patterns like LAM)
        # put every flow in one giant component: walking the closure
        # just to rediscover "everything" costs more than the solve.
        # After two consecutive full-cover closures, skip the walk and
        # take the whole flow set — a superset of the dirty closure is
        # still exact (the extra flows re-solve to their current
        # rates).  A real walk runs every 16th settle to notice when
        # the workload thins out.
        if self._dense_streak >= 2:
            self._dense_probe += 1
            if self._dense_probe < 16:
                scope.update(flows)
                return
            self._dense_probe = 0
        # Transitive closure over the flow/edge incidence graph: every
        # flow sharing an edge (directly or through intermediaries)
        # with a changed edge may see its bottleneck shift; nothing
        # outside the closure can.
        stack: List[Edge] = list(dirty)
        seen: Set[Edge] = set(dirty)
        nflows = len(flows)
        while stack:
            if len(scope) == nflows:
                # The closure already covers every active flow; the
                # remaining frontier cannot add anything.
                break
            e = stack.pop()
            for fid in edge_flows.get(e, ()):
                if fid in scope:
                    continue
                flow = flows[fid]
                scope[fid] = flow
                for e2 in flow.edges:
                    if e2 not in seen:
                        seen.add(e2)
                        stack.append(e2)
        if len(scope) * 8 >= nflows * 7:
            self._dense_streak += 1
        else:
            self._dense_streak = 0

    def solve(
        self, scope: Dict[int, "Flow"], now: float
    ) -> Tuple[int, int, int]:
        if len(scope) == 1:
            return self._solve_single(next(iter(scope.values())), now)
        net = self.net
        # Component edges in global first-seen order (= the reference
        # scan order restricted to the component, so near-tie breaks
        # agree).
        order = net._edge_order
        edge_flows = net._edge_flows
        touched = 0
        if len(scope) == len(net._flows):
            # Full-scope solve (dense regime): the component is every
            # populated edge — take them straight from the first-seen
            # registry instead of re-deriving the set from O(touched)
            # flow-edge incidence.
            comp_edges = [e for e in order if edge_flows[e]]
            for flow in scope.values():
                touched += len(flow.edges)
        else:
            edge_set: Dict[Edge, None] = {}
            for flow in scope.values():
                fe = flow.edges
                touched += len(fe)
                for e in fe:
                    edge_set[e] = None
            comp_edges = sorted(edge_set, key=order.__getitem__)
        if len(scope) <= _VECTORIZE_THRESHOLD or (
            touched <= _VECTORIZE_TOUCHED and len(comp_edges) <= _VECTORIZE_EDGES
        ):
            return self._solve_python(scope, comp_edges, now)
        return self._solve_numpy(scope, comp_edges, now)

    # -- fast paths ----------------------------------------------------
    def _solve_single(
        self, flow: "Flow", now: float
    ) -> Tuple[int, int, int]:
        """A lone flow gets the min capacity along its path (eta = 1).

        Contention-free schedules put **every** flow in this case, so
        it avoids even the dict bookkeeping of the python filler.
        """
        net = self.net
        params = net.params
        injector = net.injector
        size = flow.size
        best = float("inf")
        for e in flow.edges:
            capacity = params.effective_capacity(
                1,
                size,
                net._endpoint_edge[e],
                line_bandwidth=net._edge_bandwidth.get(e),
            )
            if injector is not None:
                capacity *= injector.link_factor(e, now)
            if capacity < best:
                best = capacity
        flow.rate = best
        if net.max_edge_multiplexing < 1:
            net.max_edge_multiplexing = 1
        return len(flow.edges), 1, 1

    def _edge_capacity(self, e: Edge, n: int, largest: float, now: float) -> float:
        net = self.net
        capacity = net.params.effective_capacity(
            n,
            largest,
            net._endpoint_edge[e],
            line_bandwidth=net._edge_bandwidth.get(e),
        )
        if net.injector is not None:
            capacity *= net.injector.link_factor(e, now)
        return capacity

    def _solve_python(
        self,
        scope: Dict[int, "Flow"],
        comp_edges: List[Edge],
        now: float,
    ) -> Tuple[int, int, int]:
        """The reference filler restricted to one small component."""
        net = self.net
        edge_flows = net._edge_flows
        flows = net._flows
        unfrozen_count: Dict[Edge, int] = {}
        available: Dict[Edge, float] = {}
        touched = 0
        for e in comp_edges:
            fids = edge_flows[e]
            n = len(fids)
            if n == 0:
                continue
            touched += n
            largest = max(flows[fid].size for fid in fids)
            unfrozen_count[e] = n
            available[e] = self._edge_capacity(e, n, largest, now)
            if n > net.max_edge_multiplexing:
                net.max_edge_multiplexing = n
        frozen: Set[int] = set()
        for flow in scope.values():
            flow.rate = 0.0
        remaining_flows = len(scope)
        iterations = 0
        while remaining_flows > 0:
            iterations += 1
            best_edge: Optional[Edge] = None
            best_share = float("inf")
            for e, count in unfrozen_count.items():
                if count <= 0:
                    continue
                share = available[e] / count
                if share < best_share - 1e-15:
                    best_share = share
                    best_edge = e
            if best_edge is None:
                raise SimulationError(
                    "max-min allocation stalled with flows unassigned"
                )
            for fid in list(edge_flows[best_edge]):
                if fid in frozen:
                    continue
                flow = flows[fid]
                flow.rate = best_share
                frozen.add(fid)
                remaining_flows -= 1
                for e in flow.edges:
                    unfrozen_count[e] -= 1
                    available[e] -= best_share
            unfrozen_count[best_edge] = 0
        return touched, iterations, iterations

    # -- vectorized waterfill ------------------------------------------
    def _solve_numpy(
        self,
        scope: Dict[int, "Flow"],
        comp_edges: List[Edge],
        now: float,
    ) -> Tuple[int, int, int]:
        net = self.net
        params = net.params
        injector = net.injector
        edge_flows = net._edge_flows
        local: Dict[int, int] = {}
        flow_list: List["Flow"] = []
        for i, (fid, flow) in enumerate(scope.items()):
            local[fid] = i
            flow_list.append(flow)
        nflows = len(flow_list)

        # Edge -> flows incidence (CSR), skipping emptied edges.
        get_local = local.__getitem__
        edges: List[Edge] = []
        eptr: List[int] = [0]
        eidx: List[int] = []
        for e in comp_edges:
            fids = edge_flows[e]
            if not fids:
                continue
            edges.append(e)
            eidx.extend(map(get_local, fids))
            eptr.append(len(eidx))
        nedges = len(edges)
        touched = len(eidx)
        eptr_arr = np.asarray(eptr, dtype=np.int64)
        eidx_arr = np.asarray(eidx, dtype=np.int64)
        count_arr = np.diff(eptr_arr).astype(np.float64)
        if count_arr.size and count_arr.max() > net.max_edge_multiplexing:
            net.max_edge_multiplexing = int(count_arr.max())

        # Vectorized effective_capacity: identical elementwise IEEE ops
        # to the scalar path in NetworkParams, so results match the
        # reference bit for bit.
        sizes_local = np.fromiter(
            (f.size for f in flow_list), dtype=np.float64, count=nflows
        )
        largest_arr = np.maximum.reduceat(sizes_local[eidx_arr], eptr_arr[:-1])
        endpoint = np.fromiter(
            (net._endpoint_edge[e] for e in edges), dtype=bool, count=nedges
        )
        raw = np.full(nedges, params.bandwidth, dtype=np.float64)
        if net._edge_bandwidth:
            bw = net._edge_bandwidth
            for i, e in enumerate(edges):
                override = bw.get(e)
                if override is not None:
                    raw[i] = override
        big_mask = largest_arr >= params.large_flow_threshold
        floor = np.where(
            endpoint,
            np.where(
                big_mask,
                params.contention_floor_large,
                params.contention_floor_small,
            ),
            np.where(big_mask, params.trunk_floor_large, params.trunk_floor_small),
        )
        excess = count_arr - params.contention_grace
        denom = 1.0 + params.contention_gamma * excess
        safe = np.where(excess > 0, denom, 1.0)
        eta = np.where(excess > 0, floor + (1.0 - floor) / safe, 1.0)
        available = (raw * params.base_efficiency) * eta
        if injector is not None:
            for i, e in enumerate(edges):
                available[i] *= injector.link_factor(e, now)

        # Flow -> edges incidence (CSR) for the freeze subtraction.
        get_edge_local = {e: i for i, e in enumerate(edges)}.__getitem__
        fptr_l: List[int] = [0]
        fidx_l: List[int] = []
        for flow in flow_list:
            fidx_l.extend(map(get_edge_local, flow.edges))
            fptr_l.append(len(fidx_l))
        fptr = np.asarray(fptr_l, dtype=np.int64)
        fidx = np.asarray(fidx_l, dtype=np.int64)

        rates = np.zeros(nflows, dtype=np.float64)
        unfrozen = np.ones(nflows, dtype=bool)
        shares = np.empty(nedges, dtype=np.float64)
        nfrozen = 0
        iterations = 0
        saturated = 0
        while nfrozen < nflows:
            iterations += 1
            active = count_arr > 0
            if not active.any():
                raise SimulationError(
                    "max-min allocation stalled with flows unassigned"
                )
            shares.fill(np.inf)
            np.divide(available, count_arr, out=shares, where=active)
            s = float(shares.min())
            if not np.isfinite(s):
                raise SimulationError(
                    "max-min allocation stalled with flows unassigned"
                )
            # Every edge at the exact minimum saturates this round.
            # The reference freezes them one scan at a time, but an
            # exactly-tied edge keeps its share after each freeze
            # (avail = n*s implies (avail - k*s)/(n - k) = s), so
            # batching them is the same fixpoint — and it collapses
            # the highly symmetric AAPC flow sets from O(edges) rounds
            # to a handful of share levels.
            tied = np.flatnonzero(shares == s)
            saturated += int(tied.size)
            crossing = _ragged_gather(eptr_arr, eidx_arr, tied)
            crossing = crossing[unfrozen[crossing]]
            if crossing.size:
                new = np.unique(crossing)
                rates[new] = s
                unfrozen[new] = False
                nfrozen += int(new.size)
                # One subtraction per (flow, edge) incidence of the
                # newly frozen flows, all at the same share s.
                hit = _ragged_gather(fptr, fidx, new)
                delta = np.bincount(hit, minlength=nedges)
                available -= delta * s
                count_arr -= delta
            count_arr[tied] = 0.0
        for j, flow in enumerate(flow_list):
            flow.rate = float(rates[j])
        return touched, iterations, saturated


def make_allocator(name: str, network: "FlowNetwork") -> BaseAllocator:
    """Build the allocator selected by :attr:`NetworkParams.allocator`."""
    if name == "incremental":
        return IncrementalAllocator(network)
    if name == "reference":
        return ReferenceAllocator(network)
    raise SimulationError(f"unknown allocator {name!r}")
