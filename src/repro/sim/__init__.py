"""Discrete-event, flow-level simulator of an Ethernet switched cluster.

The paper evaluates on a real 100 Mbps Ethernet cluster; this package is
the documented substitution (DESIGN.md Section 2): a deterministic
discrete-event simulation where each in-flight message is a fluid *flow*
over its unique tree path, link bandwidth is shared max-min fairly, and
an over-subscription efficiency curve models the TCP/Ethernet goodput
collapse that makes unscheduled AAPC slow in practice.

Layers:

* :mod:`repro.sim.engine` — event heap + generator-coroutine processes.
* :mod:`repro.sim.network` — flows, max-min rate allocation, congestion.
* :mod:`repro.sim.mpi` — rendezvous/eager point-to-point with requests,
  waitall and barrier, in the style of the MPI layers the paper targets.
* :mod:`repro.sim.executor` — runs per-rank op programs and reports
  completion times plus data-correctness checks.
"""

from repro.sim.params import NetworkParams
from repro.sim.engine import Engine, SimEvent
from repro.sim.network import FlowNetwork, Flow
from repro.sim.mpi import SimMPI, Request
from repro.sim.executor import RunResult, run_programs
from repro.obs.telemetry import RunTelemetry
from repro.sim.gantt import (
    phase_latency_table,
    phase_overlap_fraction,
    render_rank_gantt,
)
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "Trace",
    "TraceRecord",
    "render_rank_gantt",
    "phase_latency_table",
    "phase_overlap_fraction",
    "NetworkParams",
    "Engine",
    "SimEvent",
    "FlowNetwork",
    "Flow",
    "SimMPI",
    "Request",
    "RunResult",
    "RunTelemetry",
    "run_programs",
]
