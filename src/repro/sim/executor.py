"""Execute per-rank op programs on the simulated cluster.

:func:`run_programs` is the bridge between the scheduling world
(:mod:`repro.core.program`) and the simulator: it spawns one coroutine
per rank that interprets the rank's operation sequence against
:class:`~repro.sim.mpi.SimMPI`, charges jittered software overheads for
each posted operation, and reports completion times plus
data-correctness results.

Data correctness: every data receive records the logical AAPC blocks it
carried; at the end each rank must have received every block addressed
to it exactly once (forwarding algorithms like Bruck may also carry
blocks in transit — those are ignored by the check).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ProgramError, SimulationError, StallError
from repro.core.program import Block, Op, OpKind, Program
from repro.obs.bus import EventBus, LinkOccupancy
from repro.obs.diagnostics import schedule_health
from repro.obs.link_metrics import LinkMetricsCollector
from repro.obs.metrics_registry import active_registry
from repro.obs.monitor import MonitorConfig, RunMonitor
from repro.obs.telemetry import EngineStats, RunTelemetry
from repro.sim.engine import Engine, SimEvent
from repro.sim.mpi import Request, SimMPI
from repro.sim.network import FlowNetwork
from repro.sim.params import NetworkParams
from repro.sim.trace import Trace, TraceRecord
from repro.topology.graph import Topology
from repro.topology.paths import PathOracle

if False:  # typing only — keep repro.sim import-light when faults are unused
    from repro.faults.plan import FaultPlan
    from repro.faults.watchdog import WatchdogConfig


@dataclass
class RunResult:
    """Outcome of one simulated collective."""

    #: Wall-clock (simulated) completion time: last rank finish time.
    completion_time: float
    #: Per-rank finish times.
    rank_finish: Dict[str, float]
    #: Blocks received per rank (destination-addressed only).
    received_blocks: Dict[str, Set[Block]]
    #: Network statistics.
    peak_concurrent_flows: int
    max_edge_multiplexing: int
    bytes_delivered: float
    events_processed: int
    #: Bytes transported per directed edge over the whole run.
    edge_bytes: Dict[Tuple[str, str], float] = field(default_factory=dict)
    trace: Optional[Trace] = None
    #: Flight-recorder bundle (``run_programs(..., telemetry=True)``).
    telemetry: Optional[RunTelemetry] = None
    #: Final hot-path metrics snapshot (``stats`` envelope dict), when a
    #: :class:`~repro.obs.metrics_registry.MetricsRegistry` was active.
    stats: Optional[Dict[str, object]] = None
    #: What the fault injector did to this run (fault injection only).
    fault_stats: Optional[Dict[str, int]] = None
    #: Ranks that crashed mid-run (crash-at-time faults).
    crashed_ranks: Tuple[str, ...] = ()

    def aggregate_throughput(self, num_machines: int, msize: int) -> float:
        """Realised aggregate throughput in bytes/second (paper metric)."""
        if self.completion_time <= 0:
            raise SimulationError("zero completion time")
        total = num_machines * (num_machines - 1) * msize
        return total / self.completion_time

    def link_utilization(self, bandwidth: float) -> Dict[Tuple[str, str], float]:
        """Per directed edge: mean utilization of the raw link bandwidth.

        The bottleneck link of a well-scheduled AAPC should sit near the
        achievable goodput fraction (``base_efficiency``); big gaps mean
        the algorithm leaves the bottleneck idle.
        """
        if self.completion_time <= 0:
            raise SimulationError("zero completion time")
        return {
            edge: nbytes / (bandwidth * self.completion_time)
            for edge, nbytes in self.edge_bytes.items()
        }


def run_programs(
    topology: Topology,
    programs: Dict[str, Program],
    msize: int,
    params: NetworkParams,
    *,
    oracle: Optional[PathOracle] = None,
    trace: bool = False,
    telemetry: bool = False,
    max_trace_records: Optional[int] = None,
    check_delivery: bool = True,
    expected_blocks: Optional[Dict[str, Set[Block]]] = None,
    link_bandwidths: Optional[Dict[Tuple[str, str], float]] = None,
    faults: Optional["FaultPlan"] = None,
    watchdog: Optional["WatchdogConfig"] = None,
    monitor: Optional[MonitorConfig] = None,
) -> RunResult:
    """Simulate the programs and return timing plus correctness results.

    Parameters
    ----------
    msize:
        Per-block message size in bytes; an operation carrying ``k``
        blocks moves ``k * msize`` bytes unless it sets an explicit
        ``nbytes``.
    trace:
        Record per-rank operation events into ``result.trace``.
    telemetry:
        Full flight recorder: implies *trace*, additionally collects
        per-link/per-flow metrics and schedule-health diagnostics into
        ``result.telemetry`` (a :class:`~repro.obs.telemetry.RunTelemetry`).
    max_trace_records:
        Optional ring-buffer cap on the trace (see :class:`Trace`).
    check_delivery:
        Verify every rank received every block addressed to it.
    expected_blocks:
        Per-rank expected block sets for the delivery check.  Defaults
        to the AAPC pattern (every rank gets one block from every other
        rank); collectives with different semantics (broadcast,
        allgather, irregular patterns) pass their own expectation.
    link_bandwidths:
        Optional per-physical-link bandwidth overrides (bytes/second)
        for heterogeneous clusters; see :class:`FlowNetwork`.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`.  Link capacities
        degrade per the plan, sync messages are lost/delayed/duplicated
        (and retransmitted with bounded backoff), stragglers slow down
        and crashed ranks stop.  Implies the stall watchdog (default
        config) unless *watchdog* overrides it.
    watchdog:
        Optional :class:`~repro.faults.watchdog.WatchdogConfig`.  When
        active, a run that stops making progress raises
        :class:`~repro.errors.StallError` carrying a
        :class:`~repro.faults.watchdog.StallDiagnosis` instead of
        hanging or dying with an unexplained deadlock.
    monitor:
        Optional :class:`~repro.obs.monitor.MonitorConfig`.  A
        :class:`~repro.obs.monitor.RunMonitor` then emits periodic live
        :class:`~repro.obs.metrics_registry.MetricsSnapshot` events
        (plus one final snapshot) on the run's bus and to the config's
        ``on_snapshot`` callback.
    """
    machines = list(topology.machines)
    missing = [m for m in machines if m not in programs]
    if missing:
        raise ProgramError(f"no program for machines {missing}")

    observing = trace or telemetry
    bus = EventBus() if observing else None
    engine = Engine()
    # One master RNG seeds every stochastic path (per-rank noise streams
    # and the fault injector) so identical seeds replay byte-identically.
    rng = random.Random(params.seed)

    injector = None
    fault_windows: List[object] = []
    sync_disruptions: List[object] = []
    if faults is not None and not faults.empty:
        from repro.faults.injector import FaultInjector
        from repro.faults.events import (
            FaultWindow,
            SyncAbandoned,
            SyncDisrupted,
            SyncRetransmit,
        )

        faults.validate_against(topology)
        if oracle is None:
            oracle = PathOracle(topology)
        if bus is not None and telemetry:
            bus.subscribe(FaultWindow, fault_windows.append)
            for ev in (SyncDisrupted, SyncRetransmit, SyncAbandoned):
                bus.subscribe(ev, sync_disruptions.append)
        injector = FaultInjector(
            faults,
            rng=random.Random(rng.getrandbits(64) ^ faults.seed),
            oracle=oracle,
            bus=bus,
        )
        injector.publish_windows()
        if watchdog is None:
            from repro.faults.watchdog import WatchdogConfig

            watchdog = WatchdogConfig()

    network = FlowNetwork(
        engine, topology, params, oracle, link_bandwidths, bus=bus,
        injector=injector,
    )
    mpi = SimMPI(engine, network, params, injector=injector, bus=bus)
    run_trace = Trace(enabled=observing, max_records=max_trace_records)
    collector: Optional[LinkMetricsCollector] = None
    occupancy_log: List[LinkOccupancy] = []
    if bus is not None:
        run_trace.attach(bus)
        if telemetry:
            collector = LinkMetricsCollector(bus)
            bus.subscribe(LinkOccupancy, occupancy_log.append)

    if bus is not None:
        _publish = bus.publish

        def emit(rank: str, what: str, peer: str = "", tag: int = 0,
                 phase: int = -1) -> None:
            _publish(TraceRecord(engine.now, rank, what, peer, tag, phase))
    else:
        def emit(rank: str, what: str, peer: str = "", tag: int = 0,
                 phase: int = -1) -> None:
            pass

    rank_finish: Dict[str, float] = {}
    received: Dict[str, Set[Block]] = {m: set() for m in machines}
    received_lists: Dict[str, List[Block]] = {m: [] for m in machines}

    # Pre-draw each rank's noise stream and persistent speed factor so
    # spawn order cannot change the random sequence a rank observes
    # (determinism per seed).
    rank_rngs = {m: random.Random(rng.getrandbits(64)) for m in machines}
    speed_factor = {
        m: (1.0 + params.rank_speed_spread * rank_rngs[m].random())
        * params.speed_override(m)
        for m in machines
    }

    def overhead(rank: str) -> float:
        r = rank_rngs[rank]
        base = params.post_overhead * speed_factor[rank]
        if params.jitter > 0:
            base *= 1.0 + params.jitter * r.random()
        if params.stall_prob > 0 and r.random() < params.stall_prob:
            base += r.expovariate(1.0 / params.stall_mean)
        if injector is not None:
            base *= injector.overhead_factor(rank, engine.now)
        return base

    # Progress accounting for the stall watchdog: ops_completed ticks on
    # every finished operation; rank_state remembers what each rank is
    # currently parked on so a stall can be attributed to a phase and a
    # pending sync edge rather than just "it hung".
    ops_completed = [0]
    rank_state: Dict[str, Tuple[int, Op, float]] = {}
    crashed: Set[str] = set()

    def rank_process(rank: str, program: Program):
        pending: List[Request] = []
        for op_index, op in enumerate(program.ops):
            if rank in crashed:
                return
            rank_state[rank] = (op_index, op, engine.now)
            if op.kind in (OpKind.ISEND, OpKind.SEND):
                yield overhead(rank)
                emit(rank, "post_send", op.peer, op.tag, op.phase)
                req = mpi.isend(
                    rank, op.peer, op.tag, op.wire_size(msize), op.blocks,
                    phase=op.phase,
                )
                if op.kind == OpKind.SEND:
                    if not req.done:
                        yield req.event
                    emit(rank, "complete_send", op.peer, op.tag, op.phase)
                else:
                    pending.append(req)
            elif op.kind in (OpKind.IRECV, OpKind.RECV):
                yield overhead(rank)
                emit(rank, "post_recv", op.peer, op.tag, op.phase)
                req = mpi.irecv(rank, op.peer, op.tag, phase=op.phase)
                if op.kind == OpKind.RECV:
                    if not req.done:
                        yield req.event
                    _record_blocks(rank, req)
                    emit(rank, "complete_recv", op.peer, op.tag, op.phase)
                else:
                    pending.append(req)
            elif op.kind == OpKind.WAITALL:
                for req in pending:
                    if not req.done:
                        yield req.event
                    if req.kind == "recv":
                        _record_blocks(rank, req)
                emit(rank, "waitall_done", "", 0, op.phase)
                pending = []
            elif op.kind == OpKind.SYNC_SEND:
                yield overhead(rank)
                emit(rank, "sync_send", op.peer, op.tag, op.phase)
                req = mpi.isend(
                    rank, op.peer, op.tag, 0, (), sync=True, phase=op.phase
                )
                if not req.done:
                    yield req.event
            elif op.kind == OpKind.SYNC_RECV:
                emit(rank, "sync_wait", op.peer, op.tag, op.phase)
                req = mpi.irecv(rank, op.peer, op.tag, sync=True, phase=op.phase)
                if not req.done:
                    yield req.event
                emit(rank, "sync_recv", op.peer, op.tag, op.phase)
            elif op.kind == OpKind.BARRIER:
                event = mpi.barrier(len(machines))
                yield event
                emit(rank, "barrier", "", 0, op.phase)
            else:  # pragma: no cover - exhaustive over OpKind
                raise ProgramError(f"unknown op kind {op.kind!r}")
            ops_completed[0] += 1
        if pending:
            raise ProgramError(
                f"rank {rank} ended with {len(pending)} unwaited requests"
            )
        rank_state.pop(rank, None)
        rank_finish[rank] = engine.now

    def _record_blocks(rank: str, req: Request) -> None:
        for block in req.blocks:
            received_lists[rank].append(block)
            if block[1] == rank:
                received[rank].add(block)

    def all_done() -> bool:
        return all(m in rank_finish or m in crashed for m in machines)

    def diagnose(now: float):
        """Build the stall diagnosis from executor + MPI + injector state."""
        from repro.faults.watchdog import (
            BlockedRank,
            PendingSyncEdge,
            StallDiagnosis,
        )

        blocked: List[BlockedRank] = []
        for m in machines:
            if m in rank_finish or m in crashed:
                continue
            state = rank_state.get(m)
            if state is None:
                continue
            op_index, op, since = state
            blocked.append(
                BlockedRank(
                    m, op_index, op.kind.value, op.peer, op.tag, op.phase,
                    since,
                )
            )
        pending: List[PendingSyncEdge] = []
        for (src, dst, tag), entry in sorted(mpi.pending_syncs.items()):
            edge = (
                injector.path_control_blocked(src, dst, now)
                if injector is not None
                else None
            )
            pending.append(
                PendingSyncEdge(
                    src, dst, tag,
                    int(entry.get("phase", -1)),
                    str(entry.get("state", "in-flight")),
                    int(entry.get("attempts", 0)),
                    edge,
                )
            )
        for src, dst, tag, phase, state in sorted(mpi.unmatched_sync_edges()):
            edge = (
                injector.path_control_blocked(src, dst, now)
                if injector is not None
                else None
            )
            pending.append(
                PendingSyncEdge(src, dst, tag, phase, state, 0, edge)
            )
        active = injector.active_faults(now) if injector is not None else []
        abandoned = [p for p in pending if p.state == "abandoned"]
        link_blocked = [p for p in pending if p.blocked_edge is not None]
        if crashed:
            cause = f"rank(s) {sorted(crashed)} crashed; peers wait forever"
        elif abandoned:
            p = abandoned[0]
            cause = (
                f"sync {p.src}->{p.dst} (phase {p.phase}) abandoned after "
                f"{p.attempts} attempts"
            )
            if p.blocked_edge:
                cause += (
                    f" — failed link {p.blocked_edge[0]}<->{p.blocked_edge[1]}"
                    " drops all control messages"
                )
        elif link_blocked:
            p = link_blocked[0]
            cause = (
                f"failed link {p.blocked_edge[0]}<->{p.blocked_edge[1]} is "
                f"dropping sync {p.src}->{p.dst} (phase {p.phase})"
            )
        elif active:
            cause = "active fault(s): " + "; ".join(active[:3])
        else:
            cause = "no active fault — possible schedule deadlock"
        return StallDiagnosis(
            time=now,
            blocked=blocked,
            pending_syncs=pending,
            crashed_ranks=sorted(crashed),
            active_faults=active,
            suspected_cause=cause,
            # Destination-addressed blocks already delivered — the
            # complement is the residual pair set schedule repair
            # re-partitions for a mid-run resume.
            completed_pairs=sorted(
                (b[0], b[1]) for rank in machines for b in received[rank]
            ),
        )

    dog = None
    if watchdog is not None:
        from repro.faults.watchdog import StallWatchdog

        dog = StallWatchdog(
            engine,
            watchdog,
            progress=lambda: ops_completed[0],
            diagnose=diagnose,
            all_done=all_done,
        )
        dog.start()

    if injector is not None:
        from repro.faults.events import RankCrashed

        def make_crash(rank: str):
            def crash() -> None:
                if rank in rank_finish or rank in crashed:
                    return
                crashed.add(rank)
                injector.stats.ranks_crashed += 1
                state = rank_state.get(rank)
                op_index = state[0] if state else -1
                phase = state[1].phase if state else -1
                emit(rank, "crashed", "", 0, phase)
                if bus is not None:
                    bus.publish(
                        RankCrashed(engine.now, rank, op_index, phase)
                    )

            return crash

        for m in machines:
            t = injector.crash_time(m)
            if t is not None:
                engine.schedule(t, make_crash(m))

    total_ops = sum(len(p.ops) for p in programs.values())
    run_monitor: Optional[RunMonitor] = None
    if monitor is not None:
        run_monitor = RunMonitor(
            engine,
            network,
            monitor,
            registry=active_registry(),
            bus=bus,
            progress=lambda: (ops_completed[0], total_ops),
            all_done=all_done,
        )
        run_monitor.start()

    for m in machines:
        engine.spawn(rank_process(m, programs[m]))
    engine.run()
    # Byte accounting is lazy per flow; catch up before anything below
    # reads the ledgers (only matters when flows are still in flight —
    # stalls, crashes).
    network.sync_progress()
    if run_monitor is not None:
        run_monitor.emit()
        run_monitor.stop()

    unfinished = [
        m for m in machines if m not in rank_finish and m not in crashed
    ]
    if unfinished:
        if injector is not None or watchdog is not None:
            diagnosis = diagnose(engine.now)
            raise StallError(
                f"ranks {unfinished[:5]} never finished "
                f"({len(unfinished)} total); {diagnosis.summary()}",
                diagnosis,
            )
        raise SimulationError(
            f"deadlock: ranks {unfinished[:5]} never finished "
            f"({len(unfinished)} total)"
        )
    if not crashed:
        mpi.assert_drained()

    if check_delivery and not crashed:
        _check_delivery(machines, received, received_lists, expected_blocks)

    completion = max(rank_finish.values()) if rank_finish else 0.0

    registry = active_registry()
    run_stats: Optional[Dict[str, object]] = (
        registry.snapshot(sim_time=completion).as_dict()
        if registry is not None
        else None
    )

    run_telemetry: Optional[RunTelemetry] = None
    if collector is not None:
        assert bus is not None
        collector.finalize(engine.now)
        links_report = collector.report(
            completion, network.edge_bytes, params.bandwidth, link_bandwidths
        )
        run_telemetry = RunTelemetry(
            completion_time=completion,
            machines=tuple(machines),
            bandwidth=params.bandwidth,
            trace=run_trace,
            links=links_report,
            health=schedule_health(run_trace, links_report),
            engine=EngineStats(
                events_processed=engine.events_processed,
                peak_heap_depth=engine.peak_heap_depth,
                bus_events=bus.events_published,
            ),
            occupancy=occupancy_log,
            faults=tuple(fault_windows),
            sync_disruptions=tuple(sync_disruptions),
            fault_stats=(
                injector.stats.as_dict() if injector is not None else None
            ),
            msize=msize,
            params=params,
            link_bandwidths=(
                dict(link_bandwidths) if link_bandwidths else None
            ),
            stats=run_stats,
        )

    return RunResult(
        completion_time=completion,
        rank_finish=rank_finish,
        received_blocks=received,
        peak_concurrent_flows=network.peak_concurrent_flows,
        max_edge_multiplexing=network.max_edge_multiplexing,
        bytes_delivered=network.bytes_delivered,
        events_processed=engine.events_processed,
        edge_bytes=dict(network.edge_bytes),
        trace=run_trace if observing else None,
        telemetry=run_telemetry,
        fault_stats=injector.stats.as_dict() if injector is not None else None,
        crashed_ranks=tuple(sorted(crashed)),
        stats=run_stats,
    )


def _check_delivery(
    machines: Sequence[str],
    received: Dict[str, Set[Block]],
    received_lists: Dict[str, List[Block]],
    expected_blocks: Optional[Dict[str, Set[Block]]] = None,
) -> None:
    for rank in machines:
        if expected_blocks is not None:
            expected = expected_blocks.get(rank, set())
        else:
            expected = {(src, rank) for src in machines if src != rank}
        got = received[rank]
        if got != expected:
            missing = sorted(expected - got)[:5]
            extra = sorted(got - expected)[:5]
            raise SimulationError(
                f"rank {rank} delivery mismatch: missing {missing}, "
                f"unexpected {extra}"
            )
        addressed = [b for b in received_lists[rank] if b[1] == rank]
        if len(addressed) != len(expected):
            raise SimulationError(
                f"rank {rank} received {len(addressed)} addressed blocks, "
                f"expected {len(expected)} (duplicate delivery)"
            )
