"""Execute per-rank op programs on the simulated cluster.

:func:`run_programs` is the bridge between the scheduling world
(:mod:`repro.core.program`) and the simulator: it spawns one coroutine
per rank that interprets the rank's operation sequence against
:class:`~repro.sim.mpi.SimMPI`, charges jittered software overheads for
each posted operation, and reports completion times plus
data-correctness results.

Data correctness: every data receive records the logical AAPC blocks it
carried; at the end each rank must have received every block addressed
to it exactly once (forwarding algorithms like Bruck may also carry
blocks in transit — those are ignored by the check).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ProgramError, SimulationError
from repro.core.program import Block, Op, OpKind, Program
from repro.obs.bus import EventBus, LinkOccupancy
from repro.obs.diagnostics import schedule_health
from repro.obs.link_metrics import LinkMetricsCollector
from repro.obs.telemetry import EngineStats, RunTelemetry
from repro.sim.engine import Engine, SimEvent
from repro.sim.mpi import Request, SimMPI
from repro.sim.network import FlowNetwork
from repro.sim.params import NetworkParams
from repro.sim.trace import Trace, TraceRecord
from repro.topology.graph import Topology
from repro.topology.paths import PathOracle


@dataclass
class RunResult:
    """Outcome of one simulated collective."""

    #: Wall-clock (simulated) completion time: last rank finish time.
    completion_time: float
    #: Per-rank finish times.
    rank_finish: Dict[str, float]
    #: Blocks received per rank (destination-addressed only).
    received_blocks: Dict[str, Set[Block]]
    #: Network statistics.
    peak_concurrent_flows: int
    max_edge_multiplexing: int
    bytes_delivered: float
    events_processed: int
    #: Bytes transported per directed edge over the whole run.
    edge_bytes: Dict[Tuple[str, str], float] = field(default_factory=dict)
    trace: Optional[Trace] = None
    #: Flight-recorder bundle (``run_programs(..., telemetry=True)``).
    telemetry: Optional[RunTelemetry] = None

    def aggregate_throughput(self, num_machines: int, msize: int) -> float:
        """Realised aggregate throughput in bytes/second (paper metric)."""
        if self.completion_time <= 0:
            raise SimulationError("zero completion time")
        total = num_machines * (num_machines - 1) * msize
        return total / self.completion_time

    def link_utilization(self, bandwidth: float) -> Dict[Tuple[str, str], float]:
        """Per directed edge: mean utilization of the raw link bandwidth.

        The bottleneck link of a well-scheduled AAPC should sit near the
        achievable goodput fraction (``base_efficiency``); big gaps mean
        the algorithm leaves the bottleneck idle.
        """
        if self.completion_time <= 0:
            raise SimulationError("zero completion time")
        return {
            edge: nbytes / (bandwidth * self.completion_time)
            for edge, nbytes in self.edge_bytes.items()
        }


def run_programs(
    topology: Topology,
    programs: Dict[str, Program],
    msize: int,
    params: NetworkParams,
    *,
    oracle: Optional[PathOracle] = None,
    trace: bool = False,
    telemetry: bool = False,
    max_trace_records: Optional[int] = None,
    check_delivery: bool = True,
    expected_blocks: Optional[Dict[str, Set[Block]]] = None,
    link_bandwidths: Optional[Dict[Tuple[str, str], float]] = None,
) -> RunResult:
    """Simulate the programs and return timing plus correctness results.

    Parameters
    ----------
    msize:
        Per-block message size in bytes; an operation carrying ``k``
        blocks moves ``k * msize`` bytes unless it sets an explicit
        ``nbytes``.
    trace:
        Record per-rank operation events into ``result.trace``.
    telemetry:
        Full flight recorder: implies *trace*, additionally collects
        per-link/per-flow metrics and schedule-health diagnostics into
        ``result.telemetry`` (a :class:`~repro.obs.telemetry.RunTelemetry`).
    max_trace_records:
        Optional ring-buffer cap on the trace (see :class:`Trace`).
    check_delivery:
        Verify every rank received every block addressed to it.
    expected_blocks:
        Per-rank expected block sets for the delivery check.  Defaults
        to the AAPC pattern (every rank gets one block from every other
        rank); collectives with different semantics (broadcast,
        allgather, irregular patterns) pass their own expectation.
    link_bandwidths:
        Optional per-physical-link bandwidth overrides (bytes/second)
        for heterogeneous clusters; see :class:`FlowNetwork`.
    """
    machines = list(topology.machines)
    missing = [m for m in machines if m not in programs]
    if missing:
        raise ProgramError(f"no program for machines {missing}")

    observing = trace or telemetry
    bus = EventBus() if observing else None
    engine = Engine()
    network = FlowNetwork(
        engine, topology, params, oracle, link_bandwidths, bus=bus
    )
    mpi = SimMPI(engine, network, params)
    rng = random.Random(params.seed)
    run_trace = Trace(enabled=observing, max_records=max_trace_records)
    collector: Optional[LinkMetricsCollector] = None
    occupancy_log: List[LinkOccupancy] = []
    if bus is not None:
        run_trace.attach(bus)
        if telemetry:
            collector = LinkMetricsCollector(bus)
            bus.subscribe(LinkOccupancy, occupancy_log.append)

    if bus is not None:
        _publish = bus.publish

        def emit(rank: str, what: str, peer: str = "", tag: int = 0,
                 phase: int = -1) -> None:
            _publish(TraceRecord(engine.now, rank, what, peer, tag, phase))
    else:
        def emit(rank: str, what: str, peer: str = "", tag: int = 0,
                 phase: int = -1) -> None:
            pass

    rank_finish: Dict[str, float] = {}
    received: Dict[str, Set[Block]] = {m: set() for m in machines}
    received_lists: Dict[str, List[Block]] = {m: [] for m in machines}

    # Pre-draw each rank's noise stream and persistent speed factor so
    # spawn order cannot change the random sequence a rank observes
    # (determinism per seed).
    rank_rngs = {m: random.Random(rng.getrandbits(64)) for m in machines}
    speed_factor = {
        m: (1.0 + params.rank_speed_spread * rank_rngs[m].random())
        * params.speed_override(m)
        for m in machines
    }

    def overhead(rank: str) -> float:
        r = rank_rngs[rank]
        base = params.post_overhead * speed_factor[rank]
        if params.jitter > 0:
            base *= 1.0 + params.jitter * r.random()
        if params.stall_prob > 0 and r.random() < params.stall_prob:
            base += r.expovariate(1.0 / params.stall_mean)
        return base

    def rank_process(rank: str, program: Program):
        pending: List[Request] = []
        for op in program.ops:
            if op.kind in (OpKind.ISEND, OpKind.SEND):
                yield overhead(rank)
                emit(rank, "post_send", op.peer, op.tag, op.phase)
                req = mpi.isend(
                    rank, op.peer, op.tag, op.wire_size(msize), op.blocks
                )
                if op.kind == OpKind.SEND:
                    if not req.done:
                        yield req.event
                    emit(rank, "complete_send", op.peer, op.tag, op.phase)
                else:
                    pending.append(req)
            elif op.kind in (OpKind.IRECV, OpKind.RECV):
                yield overhead(rank)
                emit(rank, "post_recv", op.peer, op.tag, op.phase)
                req = mpi.irecv(rank, op.peer, op.tag)
                if op.kind == OpKind.RECV:
                    if not req.done:
                        yield req.event
                    _record_blocks(rank, req)
                    emit(rank, "complete_recv", op.peer, op.tag, op.phase)
                else:
                    pending.append(req)
            elif op.kind == OpKind.WAITALL:
                for req in pending:
                    if not req.done:
                        yield req.event
                    if req.kind == "recv":
                        _record_blocks(rank, req)
                emit(rank, "waitall_done", "", 0, op.phase)
                pending = []
            elif op.kind == OpKind.SYNC_SEND:
                yield overhead(rank)
                emit(rank, "sync_send", op.peer, op.tag, op.phase)
                req = mpi.isend(rank, op.peer, op.tag, 0, (), sync=True)
                if not req.done:
                    yield req.event
            elif op.kind == OpKind.SYNC_RECV:
                emit(rank, "sync_wait", op.peer, op.tag, op.phase)
                req = mpi.irecv(rank, op.peer, op.tag, sync=True)
                if not req.done:
                    yield req.event
                emit(rank, "sync_recv", op.peer, op.tag, op.phase)
            elif op.kind == OpKind.BARRIER:
                event = mpi.barrier(len(machines))
                yield event
                emit(rank, "barrier", "", 0, op.phase)
            else:  # pragma: no cover - exhaustive over OpKind
                raise ProgramError(f"unknown op kind {op.kind!r}")
        if pending:
            raise ProgramError(
                f"rank {rank} ended with {len(pending)} unwaited requests"
            )
        rank_finish[rank] = engine.now

    def _record_blocks(rank: str, req: Request) -> None:
        for block in req.blocks:
            received_lists[rank].append(block)
            if block[1] == rank:
                received[rank].add(block)

    for m in machines:
        engine.spawn(rank_process(m, programs[m]))
    engine.run()

    unfinished = [m for m in machines if m not in rank_finish]
    if unfinished:
        raise SimulationError(
            f"deadlock: ranks {unfinished[:5]} never finished "
            f"({len(unfinished)} total)"
        )
    mpi.assert_drained()

    if check_delivery:
        _check_delivery(machines, received, received_lists, expected_blocks)

    completion = max(rank_finish.values()) if rank_finish else 0.0

    run_telemetry: Optional[RunTelemetry] = None
    if collector is not None:
        assert bus is not None
        collector.finalize(engine.now)
        links_report = collector.report(
            completion, network.edge_bytes, params.bandwidth, link_bandwidths
        )
        run_telemetry = RunTelemetry(
            completion_time=completion,
            machines=tuple(machines),
            bandwidth=params.bandwidth,
            trace=run_trace,
            links=links_report,
            health=schedule_health(run_trace, links_report),
            engine=EngineStats(
                events_processed=engine.events_processed,
                peak_heap_depth=engine.peak_heap_depth,
                bus_events=bus.events_published,
            ),
            occupancy=occupancy_log,
        )

    return RunResult(
        completion_time=completion,
        rank_finish=rank_finish,
        received_blocks=received,
        peak_concurrent_flows=network.peak_concurrent_flows,
        max_edge_multiplexing=network.max_edge_multiplexing,
        bytes_delivered=network.bytes_delivered,
        events_processed=engine.events_processed,
        edge_bytes=dict(network.edge_bytes),
        trace=run_trace if observing else None,
        telemetry=run_telemetry,
    )


def _check_delivery(
    machines: Sequence[str],
    received: Dict[str, Set[Block]],
    received_lists: Dict[str, List[Block]],
    expected_blocks: Optional[Dict[str, Set[Block]]] = None,
) -> None:
    for rank in machines:
        if expected_blocks is not None:
            expected = expected_blocks.get(rank, set())
        else:
            expected = {(src, rank) for src in machines if src != rank}
        got = received[rank]
        if got != expected:
            missing = sorted(expected - got)[:5]
            extra = sorted(got - expected)[:5]
            raise SimulationError(
                f"rank {rank} delivery mismatch: missing {missing}, "
                f"unexpected {extra}"
            )
        addressed = [b for b in received_lists[rank] if b[1] == rank]
        if len(addressed) != len(expected):
            raise SimulationError(
                f"rank {rank} received {len(addressed)} addressed blocks, "
                f"expected {len(expected)} (duplicate delivery)"
            )
