"""Simulation parameters and their calibration rationale.

Defaults model the paper's testbed: 100 Mbps switched Ethernet, Linux
2.6 TCP, LAM/MPI-era software overheads.  Three mechanisms do the heavy
lifting of the hardware substitution (see DESIGN.md §2 and
EXPERIMENTS.md):

* ``base_efficiency`` — the fraction of line rate a single well-behaved
  TCP stream sustains end to end (headers, ACK clocking, kernel
  copies).  Calibrated so the generated routine's large-message
  aggregate throughput lands near the paper's measured fraction of the
  theoretical peak (≈0.67-0.83 across topologies; we use 0.75).
* **Congestion efficiency curve** — a directed edge carrying ``n``
  concurrent flows delivers aggregate goodput
  ``B * base_efficiency * eta(n, s)`` where::

      eta(n, s) = floor(s) + (1 - floor(s)) / (1 + gamma * (n - 1))

  and the floor depends on flow size ``s``: small flows multiplex
  through switch buffers gracefully (``contention_floor_small``), while
  flows at or above ``large_flow_threshold`` keep the buffers saturated
  and collapse much further (``contention_floor_large``) — the
  loss/retransmission behaviour the paper blames for LAM's poor
  large-message performance.
* **Transfer modes** — messages up to ``eager_threshold`` are *eager*
  (latency only); messages that fit the TCP socket buffer
  (``socket_buffer_bytes``) are *buffered*: the flow starts at send
  post and the sender's request completes immediately, letting ranks
  run ahead of their peers exactly as TCP does; larger messages use
  *rendezvous*: the flow starts only when both sides have posted.

``jitter`` / ``rank_speed_spread`` / ``stall_prob`` add seeded noise to
software overheads.  They are what lets unsynchronized phased
algorithms (MPICH ring/pairwise, the no-sync ablation) drift out of
lockstep and collide — precisely the effect the paper's pair-wise
synchronization suppresses.  Zeroing them (``without_noise``) makes
every rank perfectly deterministic, which unit tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.units import mbps, us

#: Valid :attr:`NetworkParams.allocator` values (default first).
ALLOCATORS = ("incremental", "reference")


@dataclass(frozen=True)
class NetworkParams:
    """Knobs of the cluster model (times in seconds, sizes in bytes)."""

    #: Per-link bandwidth in bytes/second (duplex: each direction).
    bandwidth: float = mbps(100)
    #: Host software overhead to post a send/recv (per operation).
    post_overhead: float = us(15)
    #: Extra handshake latency before a rendezvous transfer starts.
    rendezvous_latency: float = us(150)
    #: End-to-end latency of an eager (small) message, incl. wire time.
    eager_latency: float = us(55)
    #: End-to-end latency of a zero-byte pair-wise sync message.
    sync_latency: float = us(300)
    #: Largest message sent eagerly (no modelled bandwidth use).
    eager_threshold: int = 1024
    #: Messages strictly below this use the *buffered* mode: the send
    #: completes at post time while the flow drains toward the receiver
    #: (TCP push into socket buffers); messages at or above it use MPI
    #: rendezvous.  The paper-era MPI transports switch to a rendezvous
    #: ("long") protocol well below the 64 KB socket buffer, and the
    #: paper's measured per-phase pacing at 32 KB confirms transfers
    #: were receiver-paced from 16 KB up.
    socket_buffer_bytes: int = 16384
    #: Latency of a full barrier (used only by the barrier ablation).
    barrier_latency: float = us(400)
    #: Single-stream achievable fraction of line rate.
    base_efficiency: float = 0.75
    #: Endpoint (machine uplink/downlink) collapse floor, small flows.
    contention_floor_small: float = 0.80
    #: Endpoint collapse floor, large flows (incast buffer saturation).
    contention_floor_large: float = 0.50
    #: Trunk (switch-to-switch) collapse floor, small flows.  Trunks
    #: have deeper buffers and degrade far more gently than endpoints,
    #: but sustained over-subscription by many TCP streams still loses
    #: goodput to drops and retransmissions.
    trunk_floor_small: float = 0.90
    #: Trunk collapse floor, large flows.
    trunk_floor_large: float = 0.80
    #: Flow size at which the large-flow collapse floor applies.
    large_flow_threshold: int = 32768
    #: Early-onset slope of the congestion curve.
    contention_gamma: float = 1.0
    #: Number of concurrent flows an endpoint handles at full
    #: efficiency before the collapse curve starts (TCP copes fine with
    #: a couple of streams per port; incast needs many senders).
    contention_grace: int = 2
    #: Multiplicative jitter on software overheads: each op costs
    #: ``overhead * (1 + jitter * U)`` with U ~ Uniform[0, 1).
    jitter: float = 0.3
    #: Per-rank persistent speed spread: rank overheads are scaled by
    #: ``1 + rank_speed_spread * U_rank`` (heterogeneous "identical"
    #: nodes: background daemons, cache/NUMA placement, ...).
    rank_speed_spread: float = 0.10
    #: Probability that posting an operation hits an OS stall
    #: (scheduler preemption, interrupt storm, page fault).
    stall_prob: float = 0.02
    #: Mean of the exponential stall duration.
    stall_mean: float = 1.5e-3
    #: Explicit per-rank slowdown factors, e.g. ``(("n3", 4.0),)`` makes
    #: n3's software overheads 4x — straggler/failure injection.  These
    #: multiply on top of the random speed spread.
    rank_speed_overrides: tuple = ()
    #: RNG seed for all noise streams (runs are deterministic per seed).
    seed: int = 0
    #: Max-min rate solver: ``"incremental"`` (numpy-vectorized,
    #: re-solves only the dirty connected component of the flow/link
    #: incidence graph) or ``"reference"`` (the original full
    #: progressive-filling re-solve at every rate-change instant).  The
    #: two are rate-for-rate equivalent — the differential suite in
    #: ``tests/sim/test_allocator_differential.py`` enforces it — so
    #: this knob only trades solver speed, never results.
    allocator: str = "incremental"
    #: Recycle completed :class:`~repro.sim.network.Flow` objects for
    #: later transfers (kills per-flow allocation on the hot path).  A
    #: completed flow handle stays readable until the pool reuses the
    #: object; disable when holding handles across later starts.
    pool_flows: bool = True
    #: Resilience protocol (active only under fault injection): a sync
    #: message unacknowledged after this long is retransmitted ...
    sync_retry_timeout: float = us(900)
    #: ... with the timeout multiplied by this factor per attempt
    #: (bounded exponential backoff) ...
    sync_backoff: float = 2.0
    #: ... capped at this many seconds between retransmits ...
    sync_backoff_cap: float = 0.05
    #: ... giving up after this many retransmissions (the stall
    #: watchdog then owns the diagnosis).
    sync_max_retries: int = 25

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0 < self.base_efficiency <= 1:
            raise ValueError("base_efficiency must be in (0, 1]")
        for name in (
            "contention_floor_small",
            "contention_floor_large",
            "trunk_floor_small",
            "trunk_floor_large",
        ):
            val = getattr(self, name)
            if not 0 < val <= 1:
                raise ValueError(f"{name} must be in (0, 1]")
        if self.contention_gamma < 0:
            raise ValueError("contention_gamma must be non-negative")
        if self.jitter < 0 or self.rank_speed_spread < 0:
            raise ValueError("noise magnitudes must be non-negative")
        if not 0 <= self.stall_prob <= 1:
            raise ValueError("stall_prob must be a probability")
        if self.eager_threshold < 0 or self.socket_buffer_bytes < 0:
            raise ValueError("size thresholds must be non-negative")
        for entry in self.rank_speed_overrides:
            if len(entry) != 2 or float(entry[1]) <= 0:
                raise ValueError(
                    "rank_speed_overrides entries must be (rank, factor>0)"
                )
        if self.sync_retry_timeout <= 0 or self.sync_backoff_cap <= 0:
            raise ValueError("sync retry times must be positive")
        if self.sync_backoff < 1.0:
            raise ValueError("sync_backoff must be >= 1")
        if self.sync_max_retries < 0:
            raise ValueError("sync_max_retries must be non-negative")
        if self.allocator not in ALLOCATORS:
            raise ValueError(
                f"allocator must be one of {ALLOCATORS}, got {self.allocator!r}"
            )

    def speed_override(self, rank: str) -> float:
        """The injected slowdown factor for *rank* (1.0 if none)."""
        for name, factor in self.rank_speed_overrides:
            if name == rank:
                return float(factor)
        return 1.0

    # ------------------------------------------------------------------
    def contention_floor(
        self, flow_size: float, endpoint_edge: bool = True
    ) -> float:
        """Collapse floor for a flow of *flow_size* bytes on an edge kind."""
        large = flow_size >= self.large_flow_threshold
        if endpoint_edge:
            return self.contention_floor_large if large else self.contention_floor_small
        return self.trunk_floor_large if large else self.trunk_floor_small

    def eta(
        self, num_flows: int, largest_flow: float, endpoint_edge: bool = True
    ) -> float:
        """Multiplexing efficiency multiplier in (0, 1]."""
        excess = num_flows - self.contention_grace
        if excess <= 0:
            return 1.0
        floor = self.contention_floor(largest_flow, endpoint_edge)
        return floor + (1.0 - floor) / (1.0 + self.contention_gamma * excess)

    def effective_capacity(
        self,
        num_flows: int,
        largest_flow: float,
        endpoint_edge: bool = True,
        line_bandwidth: Optional[float] = None,
    ) -> float:
        """Aggregate goodput of a directed edge under multiplexing.

        ``num_flows`` concurrent flows, the biggest of which carries
        *largest_flow* bytes (the worst offender dominates buffer
        behaviour).  Endpoint edges (a machine's uplink or downlink)
        collapse hard: many flows fanning out of — or, the classic TCP
        incast, into — one host overwhelm its NIC/stack and the single
        switch port in front of it.  Switch-to-switch trunks have deep
        buffers and degrade much more gently, but sustained
        over-subscription still loses goodput to drops (the paper's
        LAM numbers on its multi-switch topologies show exactly this).

        *line_bandwidth* overrides the uniform :attr:`bandwidth` for
        heterogeneous clusters (e.g. gigabit trunk uplinks).
        """
        raw = self.bandwidth if line_bandwidth is None else line_bandwidth
        line = raw * self.base_efficiency
        return line * self.eta(num_flows, largest_flow, endpoint_edge)

    def transfer_mode(self, nbytes: int) -> str:
        """``"eager"``, ``"buffered"`` or ``"rendezvous"`` for a message.

        The buffered/rendezvous boundary is *strict*: a message of
        exactly ``socket_buffer_bytes`` (LAM's 64 KB long-protocol
        threshold) already uses rendezvous.
        """
        if nbytes <= self.eager_threshold:
            return "eager"
        if nbytes < self.socket_buffer_bytes:
            return "buffered"
        return "rendezvous"

    def with_seed(self, seed: int) -> "NetworkParams":
        """A copy with a different noise seed (for repetition averaging)."""
        return replace(self, seed=seed)

    def without_noise(self) -> "NetworkParams":
        """A copy with all noise disabled (deterministic lockstep timing)."""
        return replace(self, jitter=0.0, rank_speed_spread=0.0, stall_prob=0.0)

    def without_contention_penalty(self) -> "NetworkParams":
        """A copy with pure max-min sharing (eta = 1): ideal fluid model."""
        return replace(
            self,
            contention_floor_small=1.0,
            contention_floor_large=1.0,
            trunk_floor_small=1.0,
            trunk_floor_large=1.0,
            contention_gamma=0.0,
        )
