"""Packet-level store-and-forward simulator (fluid-model validation).

The main simulator (:mod:`repro.sim.network`) is *fluid*: flows share
edges max-min fairly at infinitely fine granularity.  That is an
approximation of what a real switched-Ethernet network does —
store-and-forward of MTU-sized frames through per-output-port FIFO
queues.  This module implements the real thing at packet granularity so
the approximation can be checked:

* every directed edge has a transmitter that serialises frames at link
  bandwidth (store-and-forward: a frame is re-enqueued at the next hop
  only after its last byte arrived);
* switches are output-queued with unbounded FIFOs (no losses — loss
  behaviour is the fluid model's ``eta``, deliberately out of scope
  here: the comparison target is ``eta = 1`` fluid sharing);
* sources are closed-loop (ACK-clocked): each transfer keeps one frame
  outstanding at its first hop and enqueues the next when it finishes
  transmitting, so competing transfers interleave frame-by-frame at
  shared ports — the packetised analogue of fair sharing.

The cross-validation tests (``tests/sim/test_packet.py``) assert the
two models agree on completion times within MTU-quantisation error for
single transfers, source-contended transfers, trunk-sharing
*permutation* traffic (distinct sources and destinations — exactly the
shape of the paper's contention-free AAPC phases), and whole schedule
phases.  On multi-bottleneck scenarios the models *provably* differ:
FIFO ports serve flows proportionally to their arrival rates while
max-min equalises them; both are approximations of TCP, and a test
documents the divergence bound.  Since the benchmark regime either is
permutation traffic (the generated routine) or has its fairness fine
structure dominated by the calibrated ``eta`` collapse (the contended
baselines), the fluid model is the right tool for the experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.topology.graph import Edge, Topology
from repro.topology.paths import PathOracle

#: Standard Ethernet payload per frame.
DEFAULT_MTU = 1500


@dataclass
class Transfer:
    """One unicast transfer, packetised at injection."""

    tid: int
    src: str
    dst: str
    nbytes: int
    start_time: float
    end_time: Optional[float] = None
    packets_remaining: int = 0


class _Port:
    """A directed edge's transmitter: FIFO queue + busy flag."""

    __slots__ = ("queue", "busy")

    def __init__(self) -> None:
        self.queue: Deque[Tuple[int, int, int]] = deque()  # (tid, size, hop)
        self.busy = False


class PacketNetwork:
    """Store-and-forward frame simulation over a tree topology."""

    def __init__(
        self,
        engine: Engine,
        topology: Topology,
        bandwidth: float,
        *,
        mtu: int = DEFAULT_MTU,
        oracle: Optional[PathOracle] = None,
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError("bandwidth must be positive")
        if mtu <= 0:
            raise SimulationError("mtu must be positive")
        self.engine = engine
        self.topology = topology
        self.bandwidth = bandwidth
        self.mtu = mtu
        self.oracle = oracle if oracle is not None else PathOracle(topology)
        self._ports: Dict[Edge, _Port] = {
            e: _Port() for e in topology.directed_edges()
        }
        self._transfers: Dict[int, Transfer] = {}
        self._routes: Dict[int, Tuple[Edge, ...]] = {}
        self._pending_frames: Dict[int, Deque[int]] = {}
        self._next_tid = 0
        self._on_complete: Dict[int, Callable[[Transfer], None]] = {}
        self.frames_forwarded = 0

    # ------------------------------------------------------------------
    def start_transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        on_complete: Callable[[Transfer], None] = lambda t: None,
    ) -> Transfer:
        """Inject a transfer; frames enqueue back-to-back at the source."""
        if nbytes <= 0:
            raise SimulationError("transfer size must be positive")
        route = self.oracle.path_edges(src, dst)
        if not route:
            raise SimulationError(f"no path from {src!r} to {dst!r}")
        transfer = Transfer(
            self._next_tid, src, dst, nbytes, self.engine.now
        )
        self._next_tid += 1
        full, tail = divmod(nbytes, self.mtu)
        sizes = [self.mtu] * full + ([tail] if tail else [])
        transfer.packets_remaining = len(sizes)
        self._transfers[transfer.tid] = transfer
        self._routes[transfer.tid] = route
        self._on_complete[transfer.tid] = on_complete
        # Closed-loop source: only the head frame sits in the first-hop
        # queue; the rest wait in the transfer's pending list.
        pending = deque(sizes)
        self._pending_frames[transfer.tid] = pending
        first = pending.popleft()
        self._ports[route[0]].queue.append((transfer.tid, first, 0))
        self._kick(route[0])
        return transfer

    # ------------------------------------------------------------------
    def _kick(self, edge: Edge) -> None:
        port = self._ports[edge]
        if port.busy or not port.queue:
            return
        port.busy = True
        tid, size, hop = port.queue.popleft()
        delay = size / self.bandwidth

        def done() -> None:
            port.busy = False
            self.frames_forwarded += 1
            if hop == 0:
                # source ACK clock: release the transfer's next frame
                pending = self._pending_frames[tid]
                if pending:
                    nxt = pending.popleft()
                    port.queue.append((tid, nxt, 0))
            self._frame_arrived(tid, size, hop)
            self._kick(edge)

        self.engine.schedule(delay, done)

    def _frame_arrived(self, tid: int, size: int, hop: int) -> None:
        route = self._routes[tid]
        if hop + 1 < len(route):
            next_edge = route[hop + 1]
            self._ports[next_edge].queue.append((tid, size, hop + 1))
            self._kick(next_edge)
            return
        transfer = self._transfers[tid]
        transfer.packets_remaining -= 1
        if transfer.packets_remaining == 0:
            transfer.end_time = self.engine.now
            self._on_complete[tid](transfer)


def packet_completion_times(
    topology: Topology,
    transfers: List[Tuple[str, str, int]],
    bandwidth: float,
    *,
    mtu: int = DEFAULT_MTU,
) -> List[float]:
    """Convenience: run transfers injected at t=0; return completion times."""
    engine = Engine()
    network = PacketNetwork(engine, topology, bandwidth, mtu=mtu)
    done: List[Optional[float]] = [None] * len(transfers)
    for i, (src, dst, nbytes) in enumerate(transfers):
        network.start_transfer(
            src, dst, nbytes,
            lambda t, i=i: done.__setitem__(i, t.end_time),
        )
    engine.run()
    if any(d is None for d in done):
        raise SimulationError("packet simulation left transfers unfinished")
    return [float(d) for d in done]  # type: ignore[arg-type]


def fluid_completion_times(
    topology: Topology,
    transfers: List[Tuple[str, str, int]],
    bandwidth: float,
) -> List[float]:
    """The same scenario on the fluid model with eta = 1 (for comparison)."""
    from repro.sim.network import FlowNetwork
    from repro.sim.params import NetworkParams

    params = NetworkParams(
        bandwidth=bandwidth,
        base_efficiency=1.0,
        contention_floor_small=1.0,
        contention_floor_large=1.0,
        trunk_floor_small=1.0,
        trunk_floor_large=1.0,
        contention_gamma=0.0,
    ).without_noise()
    engine = Engine()
    network = FlowNetwork(engine, topology, params)
    done: List[Optional[float]] = [None] * len(transfers)
    for i, (src, dst, nbytes) in enumerate(transfers):
        network.start_flow(
            src, dst, nbytes,
            lambda f, i=i: done.__setitem__(i, f.end_time),
        )
    engine.run()
    if any(d is None for d in done):
        raise SimulationError("fluid simulation left flows unfinished")
    return [float(d) for d in done]  # type: ignore[arg-type]
