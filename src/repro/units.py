"""Unit helpers: byte sizes, bandwidths and times.

The paper reports message sizes in binary units (8KB ... 256KB), link
bandwidth in Mbps (100 Mbps Ethernet) and completion times in
milliseconds.  These helpers keep conversions explicit and in one place so
benchmark code never multiplies by a bare ``1e6``.

Conventions used throughout the library:

* sizes are in **bytes** (int),
* bandwidths are in **bytes per second** (float),
* times are in **seconds** (float).
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Bits per byte — Ethernet bandwidth is quoted in bits/second.
BITS_PER_BYTE = 8


def kib(n: float) -> int:
    """Return *n* KiB expressed in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Return *n* MiB expressed in bytes."""
    return int(n * MIB)


def mbps(n: float) -> float:
    """Convert a bandwidth in megabits/second to bytes/second.

    ``mbps(100)`` is the 100 Mbps fast-Ethernet link speed used in the
    paper's test cluster.
    """
    return n * 1e6 / BITS_PER_BYTE


def gbps(n: float) -> float:
    """Convert a bandwidth in gigabits/second to bytes/second."""
    return n * 1e9 / BITS_PER_BYTE


def bytes_per_sec_to_mbps(bps: float) -> float:
    """Convert bytes/second back to megabits/second (for reports)."""
    return bps * BITS_PER_BYTE / 1e6


def ms(t: float) -> float:
    """Convert milliseconds to seconds."""
    return t * 1e-3


def us(t: float) -> float:
    """Convert microseconds to seconds."""
    return t * 1e-6


def seconds_to_ms(t: float) -> float:
    """Convert seconds to milliseconds (for reports)."""
    return t * 1e3


def format_size(nbytes: int) -> str:
    """Render a byte count the way the paper's tables do (``64KB``)."""
    if nbytes % MIB == 0 and nbytes >= MIB:
        return f"{nbytes // MIB}MB"
    if nbytes % KIB == 0 and nbytes >= KIB:
        return f"{nbytes // KIB}KB"
    return f"{nbytes}B"


def format_duration(t: float) -> str:
    """Render a time in seconds with an auto-picked unit (ns/us/ms/s).

    Used by the report comparators and the live monitor so durations
    read as ``1.23ms`` rather than ``0.00123``.
    """
    a = abs(t)
    if a == 0.0:
        return "0s"
    if a < 1e-6:
        return f"{t * 1e9:.0f}ns"
    if a < 1e-3:
        return f"{t * 1e6:.2f}us"
    if a < 1.0:
        return f"{t * 1e3:.3f}ms"
    return f"{t:.3f}s"


def format_duration_ms(t_ms: float) -> str:
    """Render a time in milliseconds with an auto-picked unit."""
    return format_duration(t_ms * 1e-3)


def parse_size(text: str) -> int:
    """Parse ``"64KB"``/``"1MB"``/``"512"`` style size strings to bytes."""
    s = text.strip().upper()
    for suffix, mult in (("MB", MIB), ("M", MIB), ("KB", KIB), ("K", KIB), ("B", 1)):
        if s.endswith(suffix):
            return int(float(s[: -len(suffix)]) * mult)
    return int(s)
