"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without also catching unrelated Python
errors.  The hierarchy mirrors the major subsystems: topology modelling,
schedule construction, schedule verification, and simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """The topology is malformed (not a tree, bad node kinds, etc.)."""


class TopologyFormatError(TopologyError):
    """A topology description file could not be parsed."""


class SchedulingError(ReproError):
    """The scheduling pipeline could not construct a valid schedule."""


class VerificationError(ReproError):
    """A produced schedule violates one of the paper's invariants.

    Raised by the verifiers in :mod:`repro.core.verify` when a schedule is
    not contention free, misses messages, duplicates messages, or exceeds
    the optimal phase count.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed or references unknown nodes."""


class StallError(SimulationError):
    """The stall watchdog aborted a run that stopped making progress.

    Carries a :class:`repro.faults.watchdog.StallDiagnosis` naming the
    blocked phase, the pending synchronization edges and the fault(s)
    that plausibly caused the stall, so callers get an explanation (and
    a fallback opportunity) instead of a hung simulation.
    """

    def __init__(self, message: str, diagnosis=None) -> None:
        super().__init__(message)
        self.diagnosis = diagnosis


class ProgramError(ReproError):
    """A per-rank communication program is malformed or deadlocks."""


class CodegenError(ReproError):
    """The C code generator was given an unsupported schedule."""
