"""Static contention analysis of per-rank programs.

Before ever running the simulator, a program set can be analysed
structurally: which data messages it posts per phase, how many times a
directed edge is used concurrently within a phase, and the total bytes
each edge must carry.  This is how the paper reasons about algorithms
("MPICH ... do[es] not consider the contention in the network links")
and it gives library users an instant, simulation-free diagnosis of an
algorithm/topology pairing.

The per-phase view buckets each data op under its *effective round*
(:func:`repro.core.program.effective_round`): the explicit ``phase``
when the algorithm stamps one, else a synthetic round derived from the
op's data tag — the same key the flow collector stamps on observed
:class:`~repro.obs.link_metrics.FlowRecord`\\ s, so the phase observatory
can join predictions with measurements.  The byte totals are exact
regardless of phasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.profiling import add_counters, pipeline_span
from repro.core.program import OpKind, Program, effective_round
from repro.topology.graph import Edge, Topology
from repro.topology.paths import PathOracle


@dataclass
class ContentionReport:
    """Structural summary of a program set on a topology."""

    #: messages per phase: phase -> [(src, dst, nbytes)]
    phase_messages: Dict[int, List[Tuple[str, str, int]]]
    #: worst per-phase concurrent use of any directed edge
    max_phase_edge_concurrency: int
    #: the (phase, edge, count) witnesses of the worst concurrency
    hotspots: List[Tuple[int, Edge, int]]
    #: total bytes each directed edge carries over the whole program
    edge_bytes: Dict[Edge, int]

    @property
    def num_phases(self) -> int:
        return len(self.phase_messages)

    @property
    def total_bytes(self) -> int:
        """Bytes injected at sources (each message counted once)."""
        return sum(
            nbytes
            for msgs in self.phase_messages.values()
            for (_s, _d, nbytes) in msgs
        )

    def busiest_edges(self, top: int = 5) -> List[Tuple[Edge, int]]:
        """The *top* directed edges by total bytes."""
        ranked = sorted(self.edge_bytes.items(), key=lambda kv: -kv[1])
        return ranked[:top]

    def render(self) -> str:
        lines = [
            f"phases: {self.num_phases}   "
            f"max per-phase edge concurrency: {self.max_phase_edge_concurrency}",
            f"total bytes injected: {self.total_bytes}",
            "busiest links (total bytes):",
        ]
        for edge, nbytes in self.busiest_edges():
            lines.append(f"  {edge[0]} -> {edge[1]}: {nbytes}")
        if self.max_phase_edge_concurrency > 1:
            lines.append("hotspots (phase, edge, concurrent messages):")
            for phase, edge, count in self.hotspots[:5]:
                lines.append(
                    f"  phase {phase}: {edge[0]} -> {edge[1]} x{count}"
                )
        return "\n".join(lines)


def analyze_programs(
    topology: Topology,
    programs: Dict[str, Program],
    msize: int,
    *,
    oracle: Optional[PathOracle] = None,
) -> ContentionReport:
    """Build a :class:`ContentionReport` for a program set."""
    with pipeline_span("program_analysis"):
        if oracle is None:
            oracle = PathOracle(topology)
        phase_messages: Dict[int, List[Tuple[str, str, int]]] = {}
        edge_bytes: Dict[Edge, int] = {}
        for rank, program in programs.items():
            for op in program.ops:
                if op.kind not in (OpKind.ISEND, OpKind.SEND):
                    continue
                nbytes = op.wire_size(msize)
                # Bucket under the same effective round the flow
                # collector stamps on FlowRecords, so predicted and
                # observed per-phase loads join on one key even for
                # unphased algorithms (collectives, alltoallv).
                phase_messages.setdefault(
                    effective_round(op.phase, op.tag), []
                ).append((rank, op.peer, nbytes))
                for edge in oracle.path_edges(rank, op.peer):
                    edge_bytes[edge] = edge_bytes.get(edge, 0) + nbytes

        worst = 0
        hotspots: List[Tuple[int, Edge, int]] = []
        for phase, msgs in sorted(phase_messages.items()):
            counts: Dict[Edge, int] = {}
            for src, dst, _nbytes in msgs:
                for edge in oracle.path_edges(src, dst):
                    counts[edge] = counts.get(edge, 0) + 1
            if not counts:
                continue
            phase_worst = max(counts.values())
            if phase_worst > worst:
                worst = phase_worst
                hotspots = []
            if phase_worst == worst and worst > 1:
                hotspots.extend(
                    (phase, edge, count)
                    for edge, count in counts.items()
                    if count == worst
                )
        add_counters(
            phases=len(phase_messages),
            edges=len(edge_bytes),
            max_edge_concurrency=worst,
        )
        return ContentionReport(
            phase_messages=phase_messages,
            max_phase_edge_concurrency=worst,
            hotspots=hotspots,
            edge_bytes=edge_bytes,
        )
