"""Irregular personalized communication (MPI_Alltoallv) scheduling.

The paper handles the *regular* pattern where every pair exchanges
``msize`` bytes; its related work cites heuristics for the irregular
case ([10], Liu/Wang/Prasanna).  This module extends the library to
irregular patterns in the paper's spirit:

* messages are packed into **contention-free phases** exactly as in the
  regular case (so the pair-wise sync machinery applies unchanged), but
* a phase's duration is governed by its *largest* message, so the
  packer must also balance sizes.

:func:`schedule_irregular` implements largest-first first-fit packing
with a size-compatibility window: a message only joins a phase whose
current maximum is within ``balance`` of its own size, which keeps tiny
messages from riding (and wasting) huge phases.  Two lower bounds frame
the result: the per-edge byte bottleneck (how long the busiest link
must transmit) and the per-endpoint serialization bound.

For the regular pattern this degenerates gracefully: every message has
the same size, the window never splits phases, and the packing is plain
first-fit (though the paper's own scheduler — provably optimal there —
remains the right tool; see :func:`repro.core.scheduler.schedule_aapc`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchedulingError, VerificationError
from repro.core.pattern import Message
from repro.core.schedule import MessageKind, PhasedSchedule
from repro.topology.graph import Edge, Topology
from repro.topology.paths import PathOracle

#: Per-pair byte counts: sizes[(src, dst)] -> bytes (missing/0 = no message).
SizeMap = Mapping[Tuple[str, str], int]


@dataclass
class IrregularSchedule:
    """A phased schedule for an irregular pattern, with size metadata."""

    schedule: PhasedSchedule
    sizes: Dict[Tuple[str, str], int]
    #: Duration-dominating size per phase (bytes).
    phase_sizes: List[int]

    @property
    def num_phases(self) -> int:
        return self.schedule.num_phases

    def makespan_bytes(self) -> int:
        """Serial bytes of the schedule: sum of per-phase maxima.

        Dividing by the link bandwidth gives the no-overlap completion
        estimate the packer optimises.
        """
        return sum(self.phase_sizes)


def validate_sizes(topology: Topology, sizes: SizeMap) -> Dict[Tuple[str, str], int]:
    """Normalise a size map: known machines, no self-messages, sizes > 0."""
    machines = set(topology.machines)
    clean: Dict[Tuple[str, str], int] = {}
    for (src, dst), nbytes in sizes.items():
        if src not in machines or dst not in machines:
            raise SchedulingError(f"unknown machine in pair ({src!r}, {dst!r})")
        if src == dst:
            raise SchedulingError(f"self-message {src!r} -> {dst!r}")
        if nbytes < 0:
            raise SchedulingError(f"negative size for ({src!r}, {dst!r})")
        if nbytes > 0:
            clean[(src, dst)] = int(nbytes)
    return clean


def edge_byte_loads(
    topology: Topology, sizes: SizeMap, oracle: Optional[PathOracle] = None
) -> Dict[Edge, int]:
    """Bytes each directed edge must carry for the pattern."""
    if oracle is None:
        oracle = PathOracle(topology)
    loads: Dict[Edge, int] = {e: 0 for e in topology.directed_edges()}
    for (src, dst), nbytes in validate_sizes(topology, sizes).items():
        for edge in oracle.path_edges(src, dst):
            loads[edge] += nbytes
    return loads


def bandwidth_lower_bound(
    topology: Topology, sizes: SizeMap, bandwidth: float
) -> float:
    """Completion-time lower bound: busiest link bytes / bandwidth.

    The irregular analogue of the paper's Section 3 bound.
    """
    loads = edge_byte_loads(topology, sizes)
    if not loads:
        return 0.0
    return max(loads.values()) / bandwidth


def schedule_irregular(
    topology: Topology,
    sizes: SizeMap,
    *,
    balance: float = 2.0,
    oracle: Optional[PathOracle] = None,
) -> IrregularSchedule:
    """Pack an irregular pattern into contention-free, size-bucketed phases.

    Parameters
    ----------
    balance:
        Size-compatibility window: a message of ``s`` bytes may join a
        phase whose current dominating size ``m`` satisfies
        ``m <= balance * s`` (and conversely ``s <= m`` by the
        largest-first order), bounding per-phase waste to the factor
        *balance*.  ``float("inf")`` disables bucketing (pure first-fit).
    """
    if balance < 1.0:
        raise SchedulingError("balance must be >= 1")
    if oracle is None:
        oracle = PathOracle(topology)
    clean = validate_sizes(topology, sizes)
    # Largest first: dominating sizes are fixed early, later (smaller)
    # messages fill the gaps.  Ties broken by name for determinism.
    order = sorted(clean, key=lambda pair: (-clean[pair], pair))

    phase_edges: List[set] = []
    phase_max: List[int] = []
    buckets: List[List[Tuple[str, str]]] = []
    for pair in order:
        nbytes = clean[pair]
        edges = oracle.path_edge_set(*pair)
        placed = False
        for i in range(len(buckets)):
            if phase_max[i] > balance * nbytes:
                continue  # too large a phase for this message
            if phase_edges[i] & edges:
                continue
            phase_edges[i].update(edges)
            buckets[i].append(pair)
            placed = True
            break
        if not placed:
            phase_edges.append(set(edges))
            phase_max.append(nbytes)
            buckets.append([pair])

    schedule = PhasedSchedule(topology, len(buckets))
    for p, bucket in enumerate(buckets):
        for src, dst in bucket:
            schedule.add(p, Message(src, dst), MessageKind.GLOBAL)
    return IrregularSchedule(
        schedule=schedule, sizes=clean, phase_sizes=phase_max
    )


def verify_irregular(
    result: IrregularSchedule, oracle: Optional[PathOracle] = None
) -> None:
    """Check contention freedom, completeness and size bookkeeping."""
    schedule = result.schedule
    if oracle is None:
        oracle = PathOracle(schedule.topology)
    # contention freedom phase by phase
    for p, phase in enumerate(schedule.phases()):
        used: Dict[Edge, str] = {}
        for sm in phase:
            for edge in oracle.path_edges(sm.src, sm.dst):
                if edge in used:
                    raise VerificationError(
                        f"phase {p}: {used[edge]} and {sm.message} contend"
                    )
                used[edge] = str(sm.message)
    # completeness: exactly the positive-size pairs
    scheduled = {sm.message.as_tuple() for sm in schedule.all_messages()}
    if scheduled != set(result.sizes):
        missing = set(result.sizes) - scheduled
        extra = scheduled - set(result.sizes)
        raise VerificationError(
            f"irregular schedule mismatch: missing {sorted(missing)[:5]}, "
            f"extra {sorted(extra)[:5]}"
        )
    # phase size = max member size
    for p, phase in enumerate(schedule.phases()):
        biggest = max(result.sizes[sm.message.as_tuple()] for sm in phase)
        if biggest != result.phase_sizes[p]:
            raise VerificationError(
                f"phase {p} dominating size recorded {result.phase_sizes[p]} "
                f"but members reach {biggest}"
            )


def uniform_sizes(topology: Topology, msize: int) -> Dict[Tuple[str, str], int]:
    """The regular AAPC pattern expressed as a size map (for testing)."""
    return {
        (src, dst): msize
        for src in topology.machines
        for dst in topology.machines
        if src != dst
    }
