"""Ring scheduling and the extended ring phase formulas (Section 4.2).

For ``k`` single-machine subtrees the classic ring schedule (paper
Table 1) places ``t_i -> t_j`` at phase ``j - i - 1`` when ``j > i`` and
``(k - 1) - (i - j)`` when ``i > j``, finishing in ``k - 1`` phases.

The *extended* ring schedule generalises to subtrees of any size: the
group of ``|M_i| * |M_j|`` messages ``t_i -> t_j`` occupies that many
consecutive phases, starting at

* ``|M_i| * sum_{k=i+1}^{j-1} |M_k|``                       for ``j > i``
* ``|M_0|*(|M|-|M_0|) - |M_j| * sum_{k=j+1}^{i} |M_k|``     for ``i > j``

so every subtree sends to the others in the same cyclic order as the
ring, and Lemma 2 guarantees the root links carry at most one group per
direction per phase.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import SchedulingError


def ring_phase(i: int, j: int, k: int) -> int:
    """Phase of message ``t_i -> t_j`` in the Table 1 ring schedule."""
    if i == j:
        raise SchedulingError("ring schedule has no self-messages")
    if not (0 <= i < k and 0 <= j < k):
        raise SchedulingError(f"subtree index out of range: ({i}, {j}) with k={k}")
    if j > i:
        return j - i - 1
    return (k - 1) - (i - j)


def ring_schedule(k: int) -> List[List[Tuple[int, int]]]:
    """The full Table 1 schedule: ``k - 1`` phases of ``k`` messages each.

    Phase ``p`` contains ``t_i -> t_{(i + p + 1) mod k}`` for every
    ``i`` — each subtree sends and receives exactly once per phase.
    """
    if k < 2:
        raise SchedulingError(f"ring schedule needs k >= 2 subtrees, got {k}")
    phases: List[List[Tuple[int, int]]] = []
    for p in range(k - 1):
        phases.append([(i, (i + p + 1) % k) for i in range(k)])
    return phases


def total_phases(sizes: Sequence[int]) -> int:
    """``|M_0| * (|M| - |M_0|)`` for subtree sizes sorted non-increasing."""
    _check_sizes(sizes)
    return sizes[0] * (sum(sizes) - sizes[0])


def group_start(i: int, j: int, sizes: Sequence[int]) -> int:
    """First phase of group ``t_i -> t_j`` under extended ring scheduling."""
    _check_sizes(sizes)
    k = len(sizes)
    if i == j or not (0 <= i < k and 0 <= j < k):
        raise SchedulingError(f"invalid subtree pair ({i}, {j}) for k={k}")
    if j > i:
        return sizes[i] * sum(sizes[i + 1 : j])
    return total_phases(sizes) - sizes[j] * sum(sizes[j + 1 : i + 1])


def group_interval(i: int, j: int, sizes: Sequence[int]) -> Tuple[int, int]:
    """Half-open phase interval ``[start, end)`` of group ``t_i -> t_j``."""
    start = group_start(i, j, sizes)
    return start, start + sizes[i] * sizes[j]


def _check_sizes(sizes: Sequence[int]) -> None:
    if len(sizes) < 2:
        raise SchedulingError(
            f"extended ring scheduling needs at least 2 subtrees, got {len(sizes)}"
        )
    if any(s < 1 for s in sizes):
        raise SchedulingError(f"subtree sizes must be positive: {list(sizes)}")
    if any(sizes[n] < sizes[n + 1] for n in range(len(sizes) - 1)):
        raise SchedulingError(
            f"subtree sizes must be non-increasing: {list(sizes)}"
        )
