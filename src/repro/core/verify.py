"""Ground-truth schedule verification (the paper's Theorem, checked).

These checkers work on the *real* tree — they recompute every message's
path and count directed-edge usage — so they validate the scheduling
pipeline independently of the two-level-view arguments used to build it.

* :func:`verify_contention_free` — within every phase no directed edge
  carries two messages (paper's definition of contention).
* :func:`verify_complete` — the schedule realises exactly the AAPC
  pattern, each message once.
* :func:`verify_phase_count` — the phase count equals the AAPC load
  (bottleneck-link load), i.e. the schedule is throughput-optimal.
* :func:`verify_endpoint_discipline` — every machine sends at most one
  and receives at most one message per phase (implied by contention
  freedom on the machine's duplex link, but reported separately for
  clearer diagnostics).
* :func:`verify_schedule` — all of the above.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import VerificationError
from repro.core.pattern import Message, aapc_message_set
from repro.core.schedule import PhasedSchedule
from repro.topology.analysis import aapc_load
from repro.topology.graph import Edge, Topology
from repro.topology.paths import PathOracle


def verify_contention_free(
    schedule: PhasedSchedule, oracle: Optional[PathOracle] = None
) -> None:
    """Raise :class:`VerificationError` if any phase has edge contention."""
    if oracle is None:
        oracle = PathOracle(schedule.topology)
    for p, phase in enumerate(schedule.phases()):
        used: Dict[Edge, str] = {}
        for sm in phase:
            for edge in oracle.path_edges(sm.src, sm.dst):
                holder = used.get(edge)
                if holder is not None:
                    raise VerificationError(
                        f"phase {p}: messages {holder} and {sm.message} "
                        f"contend on edge {edge}"
                    )
                used[edge] = str(sm.message)


def verify_complete(schedule: PhasedSchedule) -> None:
    """Raise unless the schedule realises the AAPC pattern exactly once each."""
    expected = aapc_message_set(schedule.topology)
    scheduled = [sm.message for sm in schedule.all_messages()]
    seen = set(scheduled)
    if len(scheduled) != len(seen):
        dupes = sorted(
            {str(m) for m in scheduled if scheduled.count(m) > 1}
        )
        raise VerificationError(f"duplicated messages: {dupes}")
    missing = expected - seen
    if missing:
        raise VerificationError(
            f"missing {len(missing)} AAPC messages, e.g. "
            f"{sorted(str(m) for m in list(missing)[:5])}"
        )
    extra = seen - expected
    if extra:
        raise VerificationError(
            f"non-AAPC messages scheduled: {sorted(str(m) for m in extra)}"
        )


def verify_phase_count(schedule: PhasedSchedule) -> None:
    """Raise unless the phase count equals the AAPC load (optimality)."""
    load = aapc_load(schedule.topology)
    m = schedule.topology.num_machines
    if m <= 1:
        expected = 0
    elif m == 2:
        expected = 1
    else:
        expected = load
    if schedule.num_phases != expected:
        raise VerificationError(
            f"schedule uses {schedule.num_phases} phases but the AAPC load "
            f"is {expected}; optimality violated"
        )
    if schedule.root_info is not None and m >= 3:
        if schedule.root_info.total_phases != expected:
            raise VerificationError(
                f"root decomposition predicts {schedule.root_info.total_phases} "
                f"phases but the bottleneck load is {expected}"
            )


def verify_endpoint_discipline(schedule: PhasedSchedule) -> None:
    """Raise unless each machine sends <= 1 and receives <= 1 per phase."""
    for p, phase in enumerate(schedule.phases()):
        senders: Dict[str, str] = {}
        receivers: Dict[str, str] = {}
        for sm in phase:
            if sm.src in senders:
                raise VerificationError(
                    f"phase {p}: machine {sm.src} sends both "
                    f"{senders[sm.src]} and {sm.message}"
                )
            if sm.dst in receivers:
                raise VerificationError(
                    f"phase {p}: machine {sm.dst} receives both "
                    f"{receivers[sm.dst]} and {sm.message}"
                )
            senders[sm.src] = str(sm.message)
            receivers[sm.dst] = str(sm.message)


def verify_schedule(
    schedule: PhasedSchedule, oracle: Optional[PathOracle] = None
) -> None:
    """Run every verifier; raise :class:`VerificationError` on the first failure."""
    verify_complete(schedule)
    verify_endpoint_discipline(schedule)
    verify_contention_free(schedule, oracle)
    verify_phase_count(schedule)


def verify_schedule_for_pairs(
    schedule: PhasedSchedule,
    pairs: Set[Message],
    oracle: Optional[PathOracle] = None,
    *,
    forbidden_edges: AbstractSet[FrozenSet[str]] = frozenset(),
) -> None:
    """Verify a schedule that realises an arbitrary pair set.

    The repair path (:mod:`repro.faults.repair`) re-partitions a
    *residual* pair set rather than the full AAPC pattern, so the
    full-pattern completeness and phase-count-optimality checks do not
    apply.  What must still hold on the degraded topology:

    * completeness against *pairs* — each exactly once, nothing extra;
    * endpoint discipline — one send, one receive per machine per phase;
    * contention freedom on the surviving links;
    * no scheduled path crosses a *forbidden* (dead) link.
    """
    scheduled = [sm.message for sm in schedule.all_messages()]
    seen = set(scheduled)
    if len(scheduled) != len(seen):
        dupes = sorted({str(m) for m in scheduled if scheduled.count(m) > 1})
        raise VerificationError(f"duplicated messages: {dupes}")
    missing = pairs - seen
    if missing:
        raise VerificationError(
            f"missing {len(missing)} pending pair(s), e.g. "
            f"{sorted(str(m) for m in list(missing)[:5])}"
        )
    extra = seen - pairs
    if extra:
        raise VerificationError(
            f"non-pending messages scheduled: "
            f"{sorted(str(m) for m in extra)[:5]}"
        )
    verify_endpoint_discipline(schedule)
    if oracle is None:
        oracle = PathOracle(schedule.topology)
    verify_contention_free(schedule, oracle)
    if forbidden_edges:
        for sm in schedule.all_messages():
            for u, v in oracle.path_edges(sm.src, sm.dst):
                if frozenset((u, v)) in forbidden_edges:
                    raise VerificationError(
                        f"message {sm.message} (phase {sm.phase}) crosses "
                        f"dead link {u}<->{v}"
                    )


def max_edge_concurrency(
    schedule: PhasedSchedule, oracle: Optional[PathOracle] = None
) -> int:
    """Highest per-phase usage count of any directed edge.

    1 for a contention-free schedule; baselines' phase decompositions
    (used by the ablation benchmarks) report how badly they overload
    links.
    """
    if oracle is None:
        oracle = PathOracle(schedule.topology)
    worst = 0
    for phase in schedule.phases():
        counts: Dict[Edge, int] = {}
        for sm in phase:
            for edge in oracle.path_edges(sm.src, sm.dst):
                counts[edge] = counts.get(edge, 0) + 1
        if counts:
            worst = max(worst, max(counts.values()))
    return worst
