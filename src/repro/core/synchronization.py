"""Pair-wise synchronization planning (paper Section 5).

To preserve the contention-free schedule without per-phase barriers, the
generated routine inserts *pair-wise synchronizations*: when messages
``a -> b`` (phase ``p``) and ``c -> d`` (phase ``q > p``) contend, a
small control message from ``a`` to ``c`` delays ``c -> d`` until
``a -> b`` has finished.  Synchronizations derivable from others are
*redundant* and removed.

Implementation notes
--------------------

* **Conflict dependences.**  Within a phase the schedule is contention
  free, so each directed tree edge is used by at most one message per
  phase.  Ordering the *consecutive* users of each tree edge is enough:
  transitivity then orders every conflicting pair on that edge.  This is
  a sound sparse subset of the paper's "every communication vs. every
  later communication" dependence graph.
* **Program-order elision.**  The generated code (and our executor)
  completes all of a rank's phase-``p`` operations before starting phase
  ``q > p``.  Hence a dependence whose later sender already participated
  in the earlier message (``src(m2) ∈ {src(m1), dst(m1)}``) needs no
  sync message.  These free orderings — and their propagation along each
  rank's participation chain — are modelled as zero-cost edges.
* **Redundant-sync elimination.**  A dependence edge is redundant when
  an alternative path (free edges plus other dependences) already orders
  the pair; removing all such edges at once yields the unique transitive
  reduction of the DAG.  Reachability uses per-node bitsets in reverse
  phase order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SchedulingError
from repro.obs.profiling import add_counters, pipeline_span
from repro.core.schedule import PhasedSchedule, ScheduledMessage
from repro.topology.graph import Edge
from repro.topology.paths import PathOracle


@dataclass(frozen=True)
class SyncMessage:
    """A control message enforcing ``after`` finishes before ``before`` starts.

    ``src`` is the sender of the earlier data message (it knows when its
    transmission completed); ``dst`` is the sender of the later data
    message (it must not post before hearing the sync).
    """

    after: ScheduledMessage
    before: ScheduledMessage

    @property
    def src(self) -> str:
        return self.after.src

    @property
    def dst(self) -> str:
        return self.before.src

    def __str__(self) -> str:
        return f"sync[{self.after.message} => {self.before.message}]"


@dataclass
class SyncStats:
    """Bookkeeping for the ablation benchmarks."""

    num_messages: int = 0
    num_conflict_deps: int = 0
    num_program_order_free: int = 0
    num_before_reduction: int = 0
    num_after_reduction: int = 0

    @property
    def removed_by_reduction(self) -> int:
        return self.num_before_reduction - self.num_after_reduction


@dataclass
class SyncPlan:
    """The synchronization messages for a phased schedule."""

    schedule: PhasedSchedule
    syncs: List[SyncMessage]
    stats: SyncStats = field(default_factory=SyncStats)

    def syncs_into(self, message: ScheduledMessage) -> List[SyncMessage]:
        """Syncs that must arrive before *message* may start."""
        return [s for s in self.syncs if s.before == message]

    def syncs_after(self, message: ScheduledMessage) -> List[SyncMessage]:
        """Syncs to send once *message* completes."""
        return [s for s in self.syncs if s.after == message]


def build_sync_plan(
    schedule: PhasedSchedule,
    *,
    oracle: Optional[PathOracle] = None,
    elide_program_order: bool = True,
    remove_redundant: bool = True,
) -> SyncPlan:
    """Compute the pair-wise synchronization plan for *schedule*.

    Parameters
    ----------
    elide_program_order:
        Skip syncs already enforced by each rank's phased program order.
    remove_redundant:
        Apply redundant-synchronization elimination (transitive
        reduction).  Disabling both flags reproduces the naive
        "synchronize every conflicting pair of consecutive edge users"
        plan that the ablation benchmark compares against.
    """
    with pipeline_span("sync_plan"):
        if oracle is None:
            oracle = PathOracle(schedule.topology)
        messages = schedule.all_messages()
        stats = SyncStats(num_messages=len(messages))
        index: Dict[ScheduledMessage, int] = {
            m: i for i, m in enumerate(messages)
        }

        with pipeline_span("dependence_graph"):
            deps = _conflict_dependences(schedule, oracle, index)
            free = _program_order_edges(messages, index)
            add_counters(
                graph_nodes=len(messages),
                conflict_edges=len(deps),
                program_order_edges=len(free),
            )
        stats.num_conflict_deps = len(deps)

        needs_sync: List[Tuple[int, int]] = []
        for a, b in deps:
            if elide_program_order and _directly_free(
                messages[a], messages[b]
            ):
                stats.num_program_order_free += 1
            else:
                needs_sync.append((a, b))
        stats.num_before_reduction = len(needs_sync)

        if remove_redundant and needs_sync:
            with pipeline_span("transitive_reduction"):
                kept = _transitive_reduction(
                    messages,
                    needs_sync,
                    free if elide_program_order else [],
                    index,
                )
                add_counters(
                    syncs_before_reduction=len(needs_sync),
                    syncs_after_reduction=len(kept),
                )
        else:
            kept = needs_sync
        stats.num_after_reduction = len(kept)
        add_counters(
            syncs_before_reduction=stats.num_before_reduction,
            syncs_after_reduction=stats.num_after_reduction,
        )

        syncs = [SyncMessage(messages[a], messages[b]) for a, b in kept]
        syncs.sort(key=lambda s: (s.after.phase, s.before.phase, s.after.src))
        return SyncPlan(schedule=schedule, syncs=syncs, stats=stats)


def split_sync_plan(
    plan: SyncPlan,
    deliverable: Callable[[SyncMessage], bool],
) -> Tuple[SyncPlan, List[SyncMessage]]:
    """Partition a sync plan into deliverable syncs and dropped ones.

    The relaxed repair tier (:mod:`repro.faults.repair`) runs a schedule
    whose sync plan omits control messages a degraded topology cannot
    deliver (e.g. any sync whose path crosses a permanently failed
    link).  Dropping a sync removes both its ``SYNC_SEND`` and its
    ``SYNC_RECV`` from the lowered programs — they stay statically valid
    — but leaves the corresponding conflicting pair unordered, i.e. the
    schedule may serialize on the shared link instead of staying
    contention free.  The caller is responsible for bounding that cost.

    Returns ``(kept_plan, dropped)``; ``kept_plan`` shares the schedule
    and carries stats whose ``num_after_reduction`` reflects the kept
    set, so downstream accounting stays consistent.
    """
    kept = [s for s in plan.syncs if deliverable(s)]
    dropped = [s for s in plan.syncs if not deliverable(s)]
    stats = replace(plan.stats, num_after_reduction=len(kept))
    return SyncPlan(schedule=plan.schedule, syncs=kept, stats=stats), dropped


# ----------------------------------------------------------------------
def _conflict_dependences(
    schedule: PhasedSchedule,
    oracle: PathOracle,
    index: Dict[ScheduledMessage, int],
) -> List[Tuple[int, int]]:
    """Deduplicated (earlier, later) pairs of consecutive users per edge."""
    users: Dict[Edge, List[ScheduledMessage]] = {}
    for sm in schedule.all_messages():
        for edge in oracle.path_edges(sm.src, sm.dst):
            users.setdefault(edge, []).append(sm)
    deps: Set[Tuple[int, int]] = set()
    for edge, msgs in users.items():
        msgs.sort(key=lambda m: m.phase)
        for earlier, later in zip(msgs, msgs[1:]):
            if earlier.phase == later.phase:
                raise SchedulingError(
                    f"messages {earlier.message} and {later.message} share "
                    f"edge {edge} in phase {earlier.phase}; schedule is not "
                    "contention free"
                )
            deps.add((index[earlier], index[later]))
    return sorted(deps)


def _directly_free(m1: ScheduledMessage, m2: ScheduledMessage) -> bool:
    """True when phased program order alone enforces ``m1 before m2``.

    The later message's *sender* must know ``m1`` finished without a
    control message: it either sent ``m1`` itself (it waited for the
    send to complete before advancing past ``m1``'s phase) or received
    it.  The paper makes the same assumption — it inserts syncs even for
    consecutive messages *into* the same node ("contention in end
    nodes"), i.e. it does not rely on receiver-side pacing.
    """
    return m2.src in (m1.src, m1.dst)


def _program_order_edges(
    messages: Sequence[ScheduledMessage],
    index: Dict[ScheduledMessage, int],
) -> List[Tuple[int, int]]:
    """Sparse generators of the sender-anchored happens-before relation.

    What phased execution guarantees without control messages: a rank
    completes all of its phase-``p`` operations before *posting*
    anything at a later phase.  Hence, for each rank ``r``:

    * ``r``'s send at phase ``p`` finishes before ``r``'s sends at later
      phases start (send-group chain), and
    * a message received by ``r`` at phase ``p`` finishes before ``r``'s
      first send at a later phase starts (receive -> next send).

    Receiving does **not** order later *receives* at the same rank —
    that would require receiver-side (rendezvous) pacing, which the
    paper's generated code does not rely on.

    The transitive closure of these edges is exactly the ordering
    knowledge that propagates to senders, so redundancy decisions made
    against it are sound for the generated programs.
    """
    sends_by_rank: Dict[str, List[ScheduledMessage]] = {}
    recvs_by_rank: Dict[str, List[ScheduledMessage]] = {}
    for sm in messages:
        sends_by_rank.setdefault(sm.src, []).append(sm)
        recvs_by_rank.setdefault(sm.dst, []).append(sm)

    edges: Set[Tuple[int, int]] = set()
    for rank, sends in sends_by_rank.items():
        sends.sort(key=lambda m: m.phase)
        # group same-phase sends (posted together: mutually unordered)
        groups: List[List[ScheduledMessage]] = []
        for sm in sends:
            if groups and groups[-1][0].phase == sm.phase:
                groups[-1].append(sm)
            else:
                groups.append([sm])
        for g1, g2 in zip(groups, groups[1:]):
            for a in g1:
                for b in g2:
                    edges.add((index[a], index[b]))
        # each receive chains into the first strictly-later send group
        group_phases = [g[0].phase for g in groups]
        for recv in recvs_by_rank.get(rank, ()):
            for phase, group in zip(group_phases, groups):
                if phase > recv.phase:
                    for b in group:
                        edges.add((index[recv], index[b]))
                    break
    return sorted(edges)


def _transitive_reduction(
    messages: Sequence[ScheduledMessage],
    deps: List[Tuple[int, int]],
    free: List[Tuple[int, int]],
    index: Dict[ScheduledMessage, int],
) -> List[Tuple[int, int]]:
    """Drop dependences with an alternative path (unique DAG reduction).

    Reachability is computed once with per-node integer bitsets in
    reverse phase order (every edge strictly increases the phase, so
    phase order is a topological order).
    """
    n = len(messages)
    succ: List[Set[int]] = [set() for _ in range(n)]
    for a, b in deps:
        succ[a].add(b)
    for a, b in free:
        succ[a].add(b)

    order = sorted(range(n), key=lambda i: messages[i].phase)
    reach: List[int] = [0] * n  # bitset of nodes reachable from i
    for i in reversed(order):
        acc = 0
        for s in succ[i]:
            acc |= (1 << s) | reach[s]
        reach[i] = acc

    kept: List[Tuple[int, int]] = []
    for a, b in deps:
        bit = 1 << b
        redundant = False
        for s in succ[a]:
            if s == b:
                continue
            if (reach[s] | (1 << s)) & bit:
                redundant = True
                break
        if not redundant:
            kept.append((a, b))
    return kept


def verify_sync_plan(plan: SyncPlan, oracle: Optional[PathOracle] = None) -> None:
    """Check that every conflicting cross-phase pair is ordered by the plan.

    Orderings may come from kept syncs or phased program order.  Raises
    :class:`SchedulingError` on the first uncovered pair.  Used by tests
    (it is O(N^2) in the number of messages).
    """
    schedule = plan.schedule
    if oracle is None:
        oracle = PathOracle(schedule.topology)
    messages = schedule.all_messages()
    index = {m: i for i, m in enumerate(messages)}
    n = len(messages)

    succ: List[Set[int]] = [set() for _ in range(n)]
    for a, b in _program_order_edges(messages, index):
        succ[a].add(b)
    for s in plan.syncs:
        succ[index[s.after]].add(index[s.before])

    order = sorted(range(n), key=lambda i: messages[i].phase)
    reach: List[int] = [0] * n
    for i in reversed(order):
        acc = 0
        for s in succ[i]:
            acc |= (1 << s) | reach[s]
        reach[i] = acc

    for a in range(n):
        for b in range(n):
            ma, mb = messages[a], messages[b]
            if ma.phase >= mb.phase:
                continue
            if not oracle.messages_conflict(ma.message.as_tuple(), mb.message.as_tuple()):
                continue
            if not (reach[a] >> b) & 1:
                raise SchedulingError(
                    f"conflicting pair unordered by sync plan: {ma.message} "
                    f"(phase {ma.phase}) vs {mb.message} (phase {mb.phase})"
                )
