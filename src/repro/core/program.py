"""Per-rank communication programs (the generated routine's IR).

A :class:`Program` is the straight-line sequence of point-to-point
operations one rank executes — the intermediate form between a
:class:`~repro.core.schedule.PhasedSchedule` plus
:class:`~repro.core.synchronization.SyncPlan` and either (a) the C code
emitted by :mod:`repro.core.codegen` or (b) execution on the simulator
(:mod:`repro.sim.executor`).  The baseline algorithms in
:mod:`repro.algorithms` build programs directly.

Operation semantics:

* ``ISEND`` / ``IRECV`` post non-blocking transfers; ``WAITALL``
  completes every outstanding request of the rank.
* ``SEND`` / ``RECV`` are their blocking forms.
* ``SYNC_SEND`` / ``SYNC_RECV`` move the zero-byte pair-wise
  synchronization messages of Section 5 (latency-only).
* ``BARRIER`` is a full barrier, used by the ablation that compares
  pair-wise synchronization against barrier-separated phases.

Data correctness is tracked by *blocks*: each data operation names the
logical ``(origin, destination)`` AAPC blocks it carries (a forwarding
algorithm like Bruck sends many blocks per message), and the executor
checks every rank ends up holding exactly the blocks addressed to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ProgramError
from repro.obs.profiling import add_counters, pipeline_span
from repro.core.schedule import PhasedSchedule
from repro.core.synchronization import SyncPlan

#: A logical AAPC block: (origin machine, final destination machine).
Block = Tuple[str, str]

#: Tag namespace offset for synchronization messages.
SYNC_TAG_BASE = 1_000_000


def effective_round(phase: int, tag: int) -> int:
    """The audit round of a data message: its phase, else its tag.

    Phased algorithms stamp ops with an explicit ``phase``; collectives
    and irregular patterns leave ``phase = -1`` but step their ``tag``
    per round, so the tag is a faithful synthetic round index.  Sync
    tags (``>= SYNC_TAG_BASE``) never name a round: those messages stay
    in the unknown bucket (-1), as does anything with no usable index.
    Static analysis and the flow collector both bucket through this
    helper so predicted and observed loads join on the same key.
    """
    if phase >= 0:
        return phase
    if 0 <= tag < SYNC_TAG_BASE:
        return tag
    return -1


class OpKind(enum.Enum):
    ISEND = "isend"
    IRECV = "irecv"
    SEND = "send"
    RECV = "recv"
    WAITALL = "waitall"
    SYNC_SEND = "sync_send"
    SYNC_RECV = "sync_recv"
    BARRIER = "barrier"


@dataclass(frozen=True)
class Op:
    """One operation in a rank's program.

    ``peer`` is the other endpoint's machine name (unused for WAITALL /
    BARRIER).  ``tag`` disambiguates concurrent transfers between the
    same pair.  ``blocks`` lists the logical payload; its length times
    the per-block message size gives the wire size.  ``phase`` records
    the schedule phase the op belongs to (-1 when not applicable) for
    tracing and reporting.
    """

    kind: OpKind
    peer: str = ""
    tag: int = 0
    blocks: Tuple[Block, ...] = ()
    phase: int = -1
    #: Explicit wire size in bytes.  When ``None`` (the regular AAPC
    #: case) the executor uses ``len(blocks) * msize``; irregular
    #: patterns (alltoallv) set it per operation.
    nbytes: Optional[int] = None

    def __post_init__(self) -> None:
        data_ops = (OpKind.ISEND, OpKind.IRECV, OpKind.SEND, OpKind.RECV)
        if self.kind in data_ops and not self.peer:
            raise ProgramError(f"{self.kind.value} needs a peer")
        if self.kind in (OpKind.SYNC_SEND, OpKind.SYNC_RECV) and not self.peer:
            raise ProgramError(f"{self.kind.value} needs a peer")
        if self.nbytes is not None and self.nbytes < 0:
            raise ProgramError("nbytes must be non-negative")

    def wire_size(self, msize: int) -> int:
        """Bytes this operation moves for a per-block size of *msize*."""
        if self.nbytes is not None:
            return self.nbytes
        return len(self.blocks) * msize

    @property
    def is_send(self) -> bool:
        return self.kind in (OpKind.ISEND, OpKind.SEND, OpKind.SYNC_SEND)

    @property
    def is_recv(self) -> bool:
        return self.kind in (OpKind.IRECV, OpKind.RECV, OpKind.SYNC_RECV)

    def __str__(self) -> str:
        if self.kind in (OpKind.WAITALL, OpKind.BARRIER):
            return self.kind.value
        return f"{self.kind.value}({self.peer}, tag={self.tag})"


@dataclass
class Program:
    """The operation sequence executed by one rank."""

    rank: str
    ops: List[Op] = field(default_factory=list)

    def append(self, op: Op) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def count(self, kind: OpKind) -> int:
        return sum(1 for op in self.ops if op.kind == kind)

    def sent_blocks(self) -> List[Block]:
        """Blocks this program pushes out (with multiplicity)."""
        return [
            b
            for op in self.ops
            if op.kind in (OpKind.ISEND, OpKind.SEND)
            for b in op.blocks
        ]


def validate_programs(programs: Dict[str, Program]) -> None:
    """Static sanity checks: sends and receives pair up by (src, dst, tag)."""
    sends: Dict[Tuple[str, str, int, bool], int] = {}
    recvs: Dict[Tuple[str, str, int, bool], int] = {}
    for rank, prog in programs.items():
        if prog.rank != rank:
            raise ProgramError(
                f"program keyed {rank!r} claims rank {prog.rank!r}"
            )
        for op in prog.ops:
            is_sync = op.kind in (OpKind.SYNC_SEND, OpKind.SYNC_RECV)
            if op.kind in (OpKind.ISEND, OpKind.SEND, OpKind.SYNC_SEND):
                key = (rank, op.peer, op.tag, is_sync)
                sends[key] = sends.get(key, 0) + 1
            elif op.kind in (OpKind.IRECV, OpKind.RECV, OpKind.SYNC_RECV):
                key = (op.peer, rank, op.tag, is_sync)
                recvs[key] = recvs.get(key, 0) + 1
    if sends != recvs:
        only_sends = {k: v for k, v in sends.items() if recvs.get(k) != v}
        only_recvs = {k: v for k, v in recvs.items() if sends.get(k) != v}
        raise ProgramError(
            "unmatched operations: "
            f"sends without recvs {list(only_sends)[:5]}, "
            f"recvs without sends {list(only_recvs)[:5]}"
        )


def build_programs(
    schedule: PhasedSchedule,
    sync_plan: Optional[SyncPlan] = None,
    *,
    sync_mode: str = "pairwise",
) -> Dict[str, Program]:
    """Lower a phased schedule (plus sync plan) to per-rank programs.

    Per participating phase each rank: (1) blocks on the sync messages
    gating its send, (2) posts its receive and send, (3) waits for both,
    (4) emits the sync messages unlocked by its completed send.

    Parameters
    ----------
    sync_mode:
        ``"pairwise"`` — the paper's scheme (requires *sync_plan*);
        ``"barrier"`` — a barrier after every phase (the expensive
        alternative Section 5 argues against);
        ``"none"`` — no inter-phase synchronization at all (the ablation
        showing why unsynchronized phases drift into contention).
    """
    if sync_mode not in ("pairwise", "barrier", "none"):
        raise ProgramError(f"unknown sync_mode {sync_mode!r}")
    if sync_mode == "pairwise" and sync_plan is None:
        raise ProgramError("pairwise sync_mode requires a sync plan")

    with pipeline_span("program_emission"):
        return _emit_programs(schedule, sync_plan, sync_mode)


def _emit_programs(
    schedule: PhasedSchedule,
    sync_plan: Optional[SyncPlan],
    sync_mode: str,
) -> Dict[str, Program]:
    machines = schedule.topology.machines
    programs: Dict[str, Program] = {m: Program(m) for m in machines}

    # Index sync messages by the data message they gate / follow.
    gating: Dict[Tuple[str, int], List] = {}
    unlocking: Dict[Tuple[str, int], List] = {}
    sync_tags: Dict[int, int] = {}
    if sync_mode == "pairwise" and sync_plan is not None:
        for seq, s in enumerate(sync_plan.syncs):
            tag = SYNC_TAG_BASE + seq
            sync_tags[id(s)] = tag
            gating.setdefault((s.before.src, s.before.phase), []).append((s, tag))
            unlocking.setdefault((s.after.src, s.after.phase), []).append((s, tag))

    for p in range(schedule.num_phases):
        phase_msgs = schedule.phase(p)
        out_of: Dict[str, List] = {}
        into: Dict[str, List] = {}
        for sm in phase_msgs:
            out_of.setdefault(sm.src, []).append(sm)
            into.setdefault(sm.dst, []).append(sm)
        participants = set(out_of) | set(into)
        for rank in machines:
            if rank not in participants:
                if sync_mode == "barrier":
                    programs[rank].append(Op(OpKind.BARRIER, phase=p))
                continue
            prog = programs[rank]
            for s, tag in gating.get((rank, p), ()):
                prog.append(
                    Op(OpKind.SYNC_RECV, peer=s.src, tag=tag, phase=p)
                )
            for sm in into.get(rank, ()):
                prog.append(
                    Op(
                        OpKind.IRECV,
                        peer=sm.src,
                        tag=p,
                        blocks=((sm.src, sm.dst),),
                        phase=p,
                    )
                )
            for sm in out_of.get(rank, ()):
                prog.append(
                    Op(
                        OpKind.ISEND,
                        peer=sm.dst,
                        tag=p,
                        blocks=((sm.src, sm.dst),),
                        phase=p,
                    )
                )
            prog.append(Op(OpKind.WAITALL, phase=p))
            for s, tag in unlocking.get((rank, p), ()):
                prog.append(
                    Op(OpKind.SYNC_SEND, peer=s.dst, tag=tag, phase=p)
                )
            if sync_mode == "barrier":
                prog.append(Op(OpKind.BARRIER, phase=p))

    add_counters(
        ranks=len(programs),
        ops=sum(len(p) for p in programs.values()),
        sync_messages=len(sync_plan.syncs) if sync_plan is not None else 0,
    )
    validate_programs(programs)
    return programs
