"""Global and local message assignment — the six-step algorithm of Figure 4.

Given the root decomposition and the extended-ring global schedule, this
module decides *which machine pair* realises each group phase and embeds
every subtree's local messages, producing the final
:class:`~repro.core.schedule.PhasedSchedule` whose properties the
paper's Theorem states: every AAPC message exactly once, in exactly
``|M_0| * (|M| - |M_0|)`` phases, contention-free within each phase.

Step map (paper Figure 4):

1. ``t_0 -> t_j``: receivers aligned to the global rule
   ``t_{j,(p - T) mod |M_j|}`` (``T`` = total phases); senders by the
   rotate pattern on base sequence ``t_{0,0..}`` — so every ``|M_0|``
   consecutive phases see each ``t_0`` machine send once.
2. ``t_i -> t_0``: receivers follow the Table 3 mapping (round ``r``
   maps sender ``t_{0,m}`` to receiver ``t_{0,(m+r+1) mod |M_0|}``);
   senders by the broadcast pattern.
3. local messages of ``t_0`` are embedded in the first
   ``|M_0| * (|M_0| - 1)`` phases: the Table 3 mapping guarantees each
   ordered pair (global receiver -> global sender) appears exactly once.
4. ``t_i -> t_j`` for ``i > j >= 1``: broadcast senders, receivers
   aligned to the same global rule as step 1.
5. local messages of ``t_i`` (``i >= 1``) are embedded in the phases of
   ``t_i -> t_{i-1}``, pairing the phase's *designated receiver*
   ``t_{i,(p - T) mod |M_i|}`` (the local sender) with the broadcast
   global sender (the local receiver).
6. ``t_i -> t_j`` for ``1 <= i < j``: any coverage pattern works; we use
   broadcast.  These phases all precede the first phase of
   ``t_0 -> t_j``, so they cannot disturb step 5's alignment argument.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SchedulingError
from repro.obs.metrics_registry import metric_inc
from repro.core.global_schedule import GlobalSchedule
from repro.core.pattern import Message
from repro.core.patterns import broadcast_pattern, rotate_pattern
from repro.core.root import RootInfo
from repro.core.schedule import MessageKind, PhasedSchedule
from repro.topology.graph import Topology


def table3_receiver(sender_index: int, round_index: int, m0: int) -> int:
    """The Table 3 mapping: receiver of ``t_0`` in a given round.

    In round ``r`` the machine ``t_{0,m}`` (the phase's global *sender*
    from ``t_0``) is paired with receiver ``t_{0,(m + r + 1) mod |M_0|}``;
    round ``|M_0| - 1`` degenerates to the identity pairing.
    """
    if not 0 <= sender_index < m0:
        raise SchedulingError(f"sender index {sender_index} out of range for |M0|={m0}")
    return (sender_index + (round_index % m0) + 1) % m0


class AssignmentState:
    """Mutable working state shared by the six steps."""

    def __init__(
        self,
        topology: Topology,
        info: RootInfo,
        gs: GlobalSchedule,
    ) -> None:
        self.topology = topology
        self.info = info
        self.gs = gs
        self.sizes = info.sizes
        self.k = info.k
        self.T = gs.num_phases
        self.schedule = PhasedSchedule(topology, self.T, info)
        # t0's global sender index at every phase (t0 sends in every
        # phase because its outgoing groups tile [0, T)).
        self.t0_sender_idx: List[Optional[int]] = [None] * self.T
        # index of the t0 machine receiving a global message at every
        # phase (groups t_i -> t_0 also tile [0, T)).
        self.t0_receiver_idx: List[Optional[int]] = [None] * self.T

    def machine(self, subtree: int, index: int) -> str:
        return self.info.subtrees[subtree].machine(index)

    def add_global(
        self, phase: int, i: int, j: int, sender_idx: int, receiver_idx: int
    ) -> None:
        msg = Message(self.machine(i, sender_idx), self.machine(j, receiver_idx))
        self.schedule.add(phase, msg, MessageKind.GLOBAL, (i, j))

    def add_local(
        self, phase: int, i: int, sender_idx: int, receiver_idx: int
    ) -> None:
        msg = Message(self.machine(i, sender_idx), self.machine(i, receiver_idx))
        self.schedule.add(phase, msg, MessageKind.LOCAL, (i, i))


def assign_messages(
    topology: Topology, info: RootInfo, gs: GlobalSchedule
) -> PhasedSchedule:
    """Run steps 1-6 and return the completed phased schedule."""
    metric_inc("scheduler.phase_partition_attempts")
    state = AssignmentState(topology, info, gs)
    _step1_t0_to_others(state)
    _step2_others_to_t0(state)
    _step3_t0_locals(state)
    _step4_down_ring_globals(state)
    _step5_subtree_locals(state)
    _step6_up_ring_globals(state)
    return state.schedule


# ----------------------------------------------------------------------
# Step 1: t0 -> tj, receivers aligned, senders rotate.
# ----------------------------------------------------------------------
def _step1_t0_to_others(state: AssignmentState) -> None:
    m0 = state.sizes[0]
    for j in range(1, state.k):
        g = state.gs.group(0, j)
        mj = state.sizes[j]
        offset = (g.start - state.T) % mj
        pattern = rotate_pattern(m0, mj, receiver_offset=offset)
        if g.start % m0 != 0:
            raise SchedulingError(
                f"group t0->t{j} starts at {g.start}, not a multiple of "
                f"|M0|={m0}; extended ring invariant violated"
            )
        for q, (s, r) in enumerate(pattern):
            p = g.start + q
            state.add_global(p, 0, j, s, r)
            state.t0_sender_idx[p] = s
    if any(s is None for s in state.t0_sender_idx):
        raise SchedulingError(
            "t0's outgoing groups do not tile all phases; extended ring "
            "invariant violated"
        )


# ----------------------------------------------------------------------
# Step 2: ti -> t0, receivers by Table 3, senders broadcast.
# ----------------------------------------------------------------------
def _step2_others_to_t0(state: AssignmentState) -> None:
    m0 = state.sizes[0]
    for i in range(1, state.k):
        g = state.gs.group(i, 0)
        if g.start % m0 != 0:
            raise SchedulingError(
                f"group t{i}->t0 starts at {g.start}, not a multiple of "
                f"|M0|={m0}; Table 3 rounds would misalign"
            )
        for p in range(g.start, g.end):
            q = p - g.start
            sender_idx = q // m0  # broadcast: t_{i,0}, t_{i,1}, ...
            round_index = p // m0
            t0_sender = state.t0_sender_idx[p]
            assert t0_sender is not None  # step 1 filled every phase
            receiver_idx = table3_receiver(t0_sender, round_index, m0)
            state.add_global(p, i, 0, sender_idx, receiver_idx)
            state.t0_receiver_idx[p] = receiver_idx
    if any(r is None for r in state.t0_receiver_idx):
        raise SchedulingError(
            "groups into t0 do not tile all phases; extended ring "
            "invariant violated"
        )


# ----------------------------------------------------------------------
# Step 3: local messages of t0 in the first |M0|*(|M0|-1) phases.
# ----------------------------------------------------------------------
def _step3_t0_locals(state: AssignmentState) -> None:
    m0 = state.sizes[0]
    span = m0 * (m0 - 1)
    if span > state.T:
        raise SchedulingError(
            f"cannot embed t0's {span} local messages in {state.T} phases; "
            "Lemma 1 should have prevented this"
        )
    seen: Set[Tuple[int, int]] = set()
    for p in range(span):
        n = state.t0_receiver_idx[p]  # local sender: global receiver
        m = state.t0_sender_idx[p]  # local receiver: global sender
        assert n is not None and m is not None
        if n == m:
            raise SchedulingError(
                f"phase {p} in t0's local window pairs machine t0,{n} with "
                "itself; Table 3 mapping violated"
            )
        if (n, m) in seen:
            raise SchedulingError(
                f"t0 local pair t0,{n}->t0,{m} appears twice in the local "
                "window; Table 3 mapping violated"
            )
        seen.add((n, m))
        state.add_local(p, 0, n, m)
    expected = {(n, m) for n in range(m0) for m in range(m0) if n != m}
    if seen != expected:
        missing = sorted(expected - seen)
        raise SchedulingError(
            f"t0 local messages not fully embedded; missing pairs {missing}"
        )


# ----------------------------------------------------------------------
# Step 4: ti -> tj for i > j >= 1, broadcast with aligned receivers.
# ----------------------------------------------------------------------
def _step4_down_ring_globals(state: AssignmentState) -> None:
    for i in range(2, state.k):
        for j in range(1, i):
            g = state.gs.group(i, j)
            mi, mj = state.sizes[i], state.sizes[j]
            offset = (g.start - state.T) % mj
            if offset != 0:
                raise SchedulingError(
                    f"group t{i}->t{j} start {g.start} breaks receiver "
                    f"alignment (offset {offset}); step 5 would fail"
                )
            for q, (s, r) in enumerate(broadcast_pattern(mi, mj)):
                state.add_global(g.start + q, i, j, s, r)


# ----------------------------------------------------------------------
# Step 5: local messages of ti (i >= 1) in the phases of ti -> t_{i-1}.
# ----------------------------------------------------------------------
def _step5_subtree_locals(state: AssignmentState) -> None:
    for i in range(1, state.k):
        mi = state.sizes[i]
        if mi < 2:
            continue  # no local messages in a single-machine subtree
        g = state.gs.group(i, i - 1)
        m_prev = state.sizes[i - 1]
        needed: Set[Tuple[int, int]] = {
            (i1, i2) for i1 in range(mi) for i2 in range(mi) if i1 != i2
        }
        for p in range(g.start, g.end):
            q = p - g.start
            designated = (p - state.T) % mi  # local sender
            sender = q // m_prev  # global sender = local receiver
            pair = (designated, sender)
            if pair in needed:
                needed.remove(pair)
                state.add_local(p, i, designated, sender)
        if needed:
            raise SchedulingError(
                f"could not embed {len(needed)} local messages of subtree "
                f"{i} in the phases of t{i}->t{i - 1}: {sorted(needed)}"
            )


# ----------------------------------------------------------------------
# Step 6: ti -> tj for 1 <= i < j; any coverage pattern works.
# ----------------------------------------------------------------------
def _step6_up_ring_globals(state: AssignmentState) -> None:
    for i in range(1, state.k):
        for j in range(i + 1, state.k):
            g = state.gs.group(i, j)
            mi, mj = state.sizes[i], state.sizes[j]
            for q, (s, r) in enumerate(broadcast_pattern(mi, mj)):
                state.add_global(g.start + q, i, j, s, r)
