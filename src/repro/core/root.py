"""Root identification — Section 4.1 of the paper.

The *root* of the scheduling scheme is a switch that (1) is connected to
a bottleneck edge of the AAPC pattern, and (2) has every subtree hanging
off it containing at most ``|M| / 2`` machines (Lemma 1).

The paper's procedure: take any bottleneck link ``(u, v)`` with
``|M_u| >= |M_v|``.  If ``u`` has more than one branch containing
machines inside ``G_u``, it is the root; otherwise the single
machine-bearing branch's link ``(u1, u)`` is also a bottleneck, so the
walk repeats across it until a node with two or more machine-bearing
branches is found.

The resulting decomposition — the root plus its machine-bearing subtrees
``t_0, ..., t_{k-1}`` ordered by non-increasing machine count — is what
the global scheduler consumes.  The AAPC load then equals
``|M_0| * (|M| - |M_0|)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.topology.analysis import aapc_edge_loads, subtree_machine_counts
from repro.topology.graph import Topology


@dataclass(frozen=True)
class Subtree:
    """One machine-bearing subtree hanging off the scheduling root.

    Attributes
    ----------
    branch:
        The root's neighbour through which this subtree hangs (``t_s0``
        style naming in the paper: the subtree *is* the component of
        ``branch`` when the root link is cut).  The branch may itself be
        a machine (then the subtree is that single machine).
    machines:
        Machines of the subtree in rank order.  Index ``x`` of this
        sequence is the paper's ``t_{i,x}`` numbering.
    """

    branch: str
    machines: Tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.machines)

    def machine(self, index: int) -> str:
        """The paper's ``t_{i,index}`` machine."""
        return self.machines[index]

    def index_of(self, machine: str) -> int:
        return self.machines.index(machine)


@dataclass(frozen=True)
class RootInfo:
    """The root switch and its subtree decomposition.

    ``subtrees`` is ordered by non-increasing machine count, so
    ``subtrees[0]`` is the paper's ``t_0`` with ``|M_0|`` machines.
    """

    root: str
    subtrees: Tuple[Subtree, ...]

    @property
    def sizes(self) -> Tuple[int, ...]:
        """``(|M_0|, |M_1|, ..., |M_{k-1}|)``."""
        return tuple(t.size for t in self.subtrees)

    @property
    def num_machines(self) -> int:
        return sum(self.sizes)

    @property
    def k(self) -> int:
        """Number of machine-bearing subtrees."""
        return len(self.subtrees)

    @property
    def total_phases(self) -> int:
        """``|M_0| * (|M| - |M_0|)`` — the optimal AAPC phase count."""
        if not self.subtrees:
            return 0
        m0 = self.subtrees[0].size
        return m0 * (self.num_machines - m0)

    def subtree_of(self, machine: str) -> int:
        """Index ``i`` of the subtree containing *machine*."""
        for i, t in enumerate(self.subtrees):
            if machine in t.machines:
                return i
        raise SchedulingError(f"machine {machine!r} not in any subtree")

    def locate(self, machine: str) -> Tuple[int, int]:
        """``(i, x)`` such that *machine* is ``t_{i,x}``."""
        for i, t in enumerate(self.subtrees):
            try:
                return i, t.machines.index(machine)
            except ValueError:
                continue
        raise SchedulingError(f"machine {machine!r} not in any subtree")


def identify_root(topology: Topology, root: Optional[str] = None) -> RootInfo:
    """Find the scheduling root per Section 4.1 and decompose the tree.

    Requires ``|M| >= 3`` (the paper's standing assumption; AAPC for one
    or two machines is trivial and handled by the scheduler directly).

    The root is not always unique (any switch whose largest subtree
    attains the bottleneck load qualifies); pass *root* to force a
    particular choice — it is validated against the paper's conditions.

    Raises
    ------
    SchedulingError
        If the topology has fewer than three machines, or the forced
        *root* does not satisfy the root conditions.
    """
    if not topology.validated:
        topology.validate()
    if topology.num_machines < 3:
        raise SchedulingError(
            "root identification requires at least 3 machines "
            f"(got {topology.num_machines}); schedule_aapc handles smaller "
            "clusters directly"
        )

    counts = subtree_machine_counts(topology)
    loads = aapc_edge_loads(topology)
    peak = max(loads.values())

    if root is not None:
        if root not in topology or not topology.is_switch(root):
            raise SchedulingError(f"forced root {root!r} is not a switch")
        info = RootInfo(root=root, subtrees=_decompose(topology, root, counts))
        _check_lemma1(topology, info)
        _check_optimality(info, peak)
        return info

    # Any bottleneck link, oriented so that u is on the side with at
    # least half the machines (|M_u| >= |M_v|).
    u, v = next(
        (a, b)
        for (a, b), load in loads.items()
        if load == peak and counts[(b, a)] >= counts[(a, b)]
    )

    # Walk across single machine-bearing branches.  counts[(u, w)] is the
    # number of machines on w's side of link (u, w); a branch w of u
    # (w != v) "contains machines" when that count is positive.
    while True:
        branches = [
            w
            for w in topology.neighbors(u)
            if w != v and counts[(u, w)] > 0
        ]
        if len(branches) > 1:
            break
        if len(branches) == 0:
            # G_u has no machines outside u itself; with |M_u| >= |M_v|
            # and |M| >= 3 this can only mean u is a machine-bearing
            # switch misidentified — the tree invariants make this
            # unreachable, but fail loudly rather than loop.
            raise SchedulingError(
                f"root walk reached {u!r} with no machine-bearing branch; "
                "topology invariants violated"
            )
        # Exactly one branch holds all of G_u's machines: link
        # (branches[0], u) is also a bottleneck; repeat from there.
        u, v = branches[0], u

    if not topology.is_switch(u):
        raise SchedulingError(
            f"identified root {u!r} is not a switch; the paper's procedure "
            "guarantees a switch root for |M| >= 3"
        )

    subtrees = _decompose(topology, u, counts)
    info = RootInfo(root=u, subtrees=subtrees)
    _check_lemma1(topology, info)
    _check_optimality(info, peak)
    return info


def _check_optimality(info: RootInfo, bottleneck_load: int) -> None:
    """The decomposition's phase count must equal the AAPC load.

    ``|M_0| * (|M| - |M_0|)`` is the load of the root link of the
    largest subtree; a valid root makes it the bottleneck load, which is
    exactly what makes the schedule throughput-optimal.
    """
    if info.total_phases != bottleneck_load:
        raise SchedulingError(
            f"root {info.root!r} yields {info.total_phases} phases but the "
            f"AAPC bottleneck load is {bottleneck_load}; not a valid "
            "scheduling root"
        )


def _decompose(
    topology: Topology,
    root: str,
    counts: Dict[Tuple[str, str], int],
) -> Tuple[Subtree, ...]:
    """The root's machine-bearing subtrees, largest first.

    Sorting is stable on the root's neighbour order, so the
    decomposition is deterministic for a given topology.
    """
    subtrees: List[Subtree] = []
    for w in topology.neighbors(root):
        if counts[(root, w)] == 0:
            continue  # switch-only branch: carries no AAPC traffic
        machines = tuple(topology.subtree_machines(root, w))
        subtrees.append(Subtree(branch=w, machines=machines))
    subtrees.sort(key=lambda t: -t.size)
    return tuple(subtrees)


def _check_lemma1(topology: Topology, info: RootInfo) -> None:
    """Lemma 1: every subtree holds at most |M|/2 machines."""
    half = topology.num_machines / 2
    for t in info.subtrees:
        if t.size > half:
            raise SchedulingError(
                f"Lemma 1 violated: subtree through {t.branch!r} has "
                f"{t.size} machines > |M|/2 = {half}"
            )
    if info.k < 2:
        raise SchedulingError(
            f"root {info.root!r} has {info.k} machine-bearing subtree(s); "
            "expected at least two"
        )
