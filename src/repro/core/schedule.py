"""Phase/schedule containers produced by the scheduling pipeline.

A :class:`PhasedSchedule` is the end product of Section 4: an ordered
list of phases, each holding the contention-free messages executed in
that phase, together with the topology and root decomposition that
produced it.  It also distinguishes *global* messages (crossing the
root) from *local* ones (within a subtree), which the reporting and
ablation code cares about.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.core.pattern import Message
from repro.core.root import RootInfo
from repro.topology.graph import Topology


class MessageKind(enum.Enum):
    """Whether a scheduled message crosses the root or stays local."""

    GLOBAL = "global"
    LOCAL = "local"


@dataclass(frozen=True)
class ScheduledMessage:
    """A message pinned to a phase.

    ``group`` is the subtree pair ``(i, j)`` for global messages, or
    ``(i, i)`` for a local message inside subtree ``i``; ``(-1, -1)``
    when no root decomposition applies (trivial clusters, baselines).
    """

    message: Message
    phase: int
    kind: MessageKind
    group: Tuple[int, int] = (-1, -1)

    @property
    def src(self) -> str:
        return self.message.src

    @property
    def dst(self) -> str:
        return self.message.dst

    def __str__(self) -> str:
        tag = "G" if self.kind is MessageKind.GLOBAL else "L"
        return f"[{self.phase}:{tag}] {self.message}"


class PhasedSchedule:
    """An ordered sequence of contention-free phases realising a pattern."""

    def __init__(
        self,
        topology: Topology,
        num_phases: int,
        root_info: Optional[RootInfo] = None,
    ) -> None:
        if num_phases < 0:
            raise SchedulingError("phase count must be non-negative")
        self.topology = topology
        self.root_info = root_info
        self._phases: List[List[ScheduledMessage]] = [
            [] for _ in range(num_phases)
        ]
        self._by_message: Dict[Message, ScheduledMessage] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(
        self,
        phase: int,
        message: Message,
        kind: MessageKind,
        group: Tuple[int, int] = (-1, -1),
    ) -> ScheduledMessage:
        """Pin *message* to *phase*; a message may be scheduled only once."""
        if not 0 <= phase < len(self._phases):
            raise SchedulingError(
                f"phase {phase} out of range [0, {len(self._phases)})"
            )
        if message in self._by_message:
            prev = self._by_message[message]
            raise SchedulingError(
                f"message {message} already scheduled in phase {prev.phase}"
            )
        sm = ScheduledMessage(message, phase, kind, group)
        self._phases[phase].append(sm)
        self._by_message[message] = sm
        return sm

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_phases(self) -> int:
        return len(self._phases)

    def phase(self, p: int) -> Sequence[ScheduledMessage]:
        """Messages of phase *p* in insertion order."""
        return tuple(self._phases[p])

    def phases(self) -> Iterator[Sequence[ScheduledMessage]]:
        for p in range(len(self._phases)):
            yield self.phase(p)

    def all_messages(self) -> List[ScheduledMessage]:
        """Every scheduled message, in (phase, insertion) order."""
        return [sm for phase in self._phases for sm in phase]

    def __len__(self) -> int:
        return len(self._by_message)

    def lookup(self, message: Message) -> ScheduledMessage:
        """Where a message was scheduled."""
        try:
            return self._by_message[message]
        except KeyError:
            raise SchedulingError(f"message {message} is not scheduled") from None

    def phase_of(self, message: Message) -> int:
        return self.lookup(message).phase

    def globals_in(self, p: int) -> List[ScheduledMessage]:
        return [m for m in self._phases[p] if m.kind is MessageKind.GLOBAL]

    def locals_in(self, p: int) -> List[ScheduledMessage]:
        return [m for m in self._phases[p] if m.kind is MessageKind.LOCAL]

    def messages_of_rank(self, machine: str) -> List[ScheduledMessage]:
        """Messages sent by *machine*, in phase order."""
        return sorted(
            (m for m in self._by_message.values() if m.src == machine),
            key=lambda m: m.phase,
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII table in the style of the paper's Table 4."""
        lines = []
        width = max(
            (len(str(m.message)) for m in self._by_message.values()), default=8
        )
        for p, phase in enumerate(self.phases()):
            cells = []
            for sm in sorted(phase, key=lambda m: (m.kind.value, m.group)):
                tag = "G" if sm.kind is MessageKind.GLOBAL else "L"
                cells.append(f"{tag}:{str(sm.message):<{width}}")
            lines.append(f"phase {p:>3} | " + "  ".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhasedSchedule(phases={self.num_phases}, "
            f"messages={len(self._by_message)})"
        )
