"""Messages and communication patterns (paper Section 3).

A *message* ``u -> v`` is a transmission from machine ``u`` to machine
``v``; a *pattern* is a set of messages; the *AAPC pattern* on a cluster
is ``{u -> v : u != v, u, v in M}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Set, Tuple

from repro.errors import SchedulingError
from repro.topology.graph import Topology


@dataclass(frozen=True, order=True)
class Message:
    """A point-to-point message between two machines."""

    src: str
    dst: str

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise SchedulingError(
                f"message from {self.src!r} to itself is not a valid AAPC message"
            )

    def reversed(self) -> "Message":
        """The message in the opposite direction."""
        return Message(self.dst, self.src)

    def as_tuple(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"


def aapc_messages(topology: Topology) -> List[Message]:
    """The AAPC pattern: every machine sends to every other machine.

    Messages are ordered by (source rank, destination rank), which gives
    a canonical enumeration used by the completeness verifier.
    """
    machines = topology.machines
    return [
        Message(src, dst)
        for src in machines
        for dst in machines
        if src != dst
    ]


def aapc_message_set(topology: Topology) -> Set[Message]:
    """The AAPC pattern as a set, for O(1) membership tests."""
    return set(aapc_messages(topology))


def message_count(topology: Topology) -> int:
    """``|M| * (|M| - 1)`` — the number of messages in AAPC."""
    m = topology.num_machines
    return m * (m - 1)
