"""The paper's primary contribution: contention-free AAPC scheduling.

The pipeline (paper Section 4):

1. :mod:`repro.core.root` — identify the scheduling root, a switch on a
   bottleneck link whose subtrees each hold at most ``|M|/2`` machines.
2. :mod:`repro.core.global_schedule` — extended ring scheduling: assign a
   contiguous interval of phases to every ordered subtree pair
   ``t_i -> t_j``.
3. :mod:`repro.core.assignment` — the six-step algorithm of Figure 4:
   pick a concrete (sender, receiver) machine pair for every phase of
   every group, embed every subtree's local messages, and produce a
   :class:`repro.core.schedule.PhasedSchedule` with exactly
   ``|M0| * (|M| - |M0|)`` contention-free phases.
4. :mod:`repro.core.verify` — ground-truth checkers for the paper's
   lemmas and theorem, used by tests and (optionally) at schedule time.
5. :mod:`repro.core.synchronization` — the pair-wise synchronization
   plan with redundant synchronizations removed (Section 5).
6. :mod:`repro.core.program` / :mod:`repro.core.codegen` — turn a
   schedule plus sync plan into executable per-rank programs and into a
   generated C routine.

The one-call entry point is :func:`repro.core.scheduler.schedule_aapc`.
"""

from repro.core.pattern import Message, aapc_messages
from repro.core.root import RootInfo, Subtree, identify_root
from repro.core.global_schedule import GlobalSchedule, build_global_schedule
from repro.core.schedule import PhasedSchedule, ScheduledMessage
from repro.core.scheduler import schedule_aapc
from repro.core.synchronization import SyncPlan, build_sync_plan
from repro.core.program import Program, build_programs
from repro.core.verify import (
    verify_complete,
    verify_contention_free,
    verify_phase_count,
    verify_schedule,
)
from repro.core.irregular import (
    IrregularSchedule,
    schedule_irregular,
    verify_irregular,
)
from repro.core.naive import greedy_phases, random_order_phases

__all__ = [
    "Message",
    "aapc_messages",
    "RootInfo",
    "Subtree",
    "identify_root",
    "GlobalSchedule",
    "build_global_schedule",
    "PhasedSchedule",
    "ScheduledMessage",
    "schedule_aapc",
    "SyncPlan",
    "build_sync_plan",
    "Program",
    "build_programs",
    "verify_schedule",
    "verify_contention_free",
    "verify_complete",
    "verify_phase_count",
    "IrregularSchedule",
    "schedule_irregular",
    "verify_irregular",
    "greedy_phases",
    "random_order_phases",
]
