"""Naive contention-free phase decompositions, for comparison.

The paper's scheduler is *optimal*: its phase count equals the
bottleneck load.  A natural question (and our ablation) is how much
that optimality buys over the obvious approach: greedily pack messages
into phases first-fit, keeping each phase contention free.  Greedy
packing is correct but can exceed the optimal phase count — each extra
phase is an extra round of bottleneck-link time.

:func:`greedy_phases` implements first-fit packing over a configurable
message order; :func:`random_order_phases` uses a seeded shuffle, which
is the fairest version of "no scheduling insight at all".
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.pattern import Message, aapc_messages
from repro.core.schedule import MessageKind, PhasedSchedule
from repro.topology.graph import Edge, Topology
from repro.topology.paths import PathOracle


def greedy_phases(
    topology: Topology,
    messages: Optional[Sequence[Message]] = None,
    *,
    oracle: Optional[PathOracle] = None,
) -> PhasedSchedule:
    """First-fit contention-free phase packing of *messages*.

    Messages default to the canonical AAPC enumeration.  Every message
    goes into the first phase whose edge set it does not intersect; a
    new phase opens when none fits.  The result is always contention
    free and complete, but generally uses more than the optimal
    ``|M_0| * (|M| - |M_0|)`` phases.
    """
    if oracle is None:
        oracle = PathOracle(topology)
    if messages is None:
        messages = aapc_messages(topology)
    phase_edges: List[set] = []
    placements: List[List[Message]] = []
    for message in messages:
        edges = oracle.path_edge_set(message.src, message.dst)
        for edge_set, bucket in zip(phase_edges, placements):
            if not (edges & edge_set):
                edge_set.update(edges)
                bucket.append(message)
                break
        else:
            phase_edges.append(set(edges))
            placements.append([message])
    schedule = PhasedSchedule(topology, len(placements))
    for p, bucket in enumerate(placements):
        for message in bucket:
            schedule.add(p, message, MessageKind.GLOBAL)
    return schedule


def random_order_phases(
    topology: Topology,
    *,
    seed: int = 0,
    oracle: Optional[PathOracle] = None,
) -> PhasedSchedule:
    """Greedy packing over a seeded random message order."""
    messages = aapc_messages(topology)
    random.Random(seed).shuffle(messages)
    return greedy_phases(topology, messages, oracle=oracle)
