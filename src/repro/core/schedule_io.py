"""JSON import/export of phased schedules.

The generated schedule is a topology-specific artifact worth shipping
alongside the generated C routine — external tools (visualisers, other
runtimes) can consume it without running the scheduler.  The format is
versioned JSON pairing the topology text with the phase list.
"""

from __future__ import annotations

import io
import json
from typing import IO, Union

from repro.core.pattern import Message
from repro.core.schedule import MessageKind, PhasedSchedule
from repro.core.root import RootInfo, Subtree
from repro.errors import ReproError
from repro.topology.serialization import dumps_topology, loads_topology

SCHEMA_VERSION = 1


def schedule_to_dict(schedule: PhasedSchedule) -> dict:
    """A JSON-serialisable dict for a phased schedule."""
    data = {
        "schema": SCHEMA_VERSION,
        "topology": dumps_topology(schedule.topology),
        "num_phases": schedule.num_phases,
        "phases": [
            [
                {
                    "src": sm.src,
                    "dst": sm.dst,
                    "kind": sm.kind.value,
                    "group": list(sm.group),
                }
                for sm in schedule.phase(p)
            ]
            for p in range(schedule.num_phases)
        ],
    }
    if schedule.root_info is not None:
        data["root"] = {
            "switch": schedule.root_info.root,
            "subtrees": [
                {"branch": t.branch, "machines": list(t.machines)}
                for t in schedule.root_info.subtrees
            ],
        }
    return data


def schedule_from_dict(data: dict) -> PhasedSchedule:
    """Inverse of :func:`schedule_to_dict`."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported schedule schema {data.get('schema')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    topology = loads_topology(data["topology"])
    root_info = None
    if "root" in data:
        root_info = RootInfo(
            root=data["root"]["switch"],
            subtrees=tuple(
                Subtree(branch=t["branch"], machines=tuple(t["machines"]))
                for t in data["root"]["subtrees"]
            ),
        )
    schedule = PhasedSchedule(topology, int(data["num_phases"]), root_info)
    for p, phase in enumerate(data["phases"]):
        for entry in phase:
            schedule.add(
                p,
                Message(entry["src"], entry["dst"]),
                MessageKind(entry["kind"]),
                tuple(entry["group"]),
            )
    return schedule


def save_schedule(schedule: PhasedSchedule, sink: Union[str, IO[str]]) -> None:
    if isinstance(sink, str):
        with open(sink, "w", encoding="utf-8") as fh:
            save_schedule(schedule, fh)
            return
    json.dump(schedule_to_dict(schedule), sink, indent=2, sort_keys=True)
    sink.write("\n")


def load_schedule(source: Union[str, IO[str]]) -> PhasedSchedule:
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return load_schedule(fh)
    try:
        data = json.load(source)
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt schedule file: {exc}") from exc
    return schedule_from_dict(data)


def dumps_schedule(schedule: PhasedSchedule) -> str:
    buf = io.StringIO()
    save_schedule(schedule, buf)
    return buf.getvalue()


def loads_schedule(text: str) -> PhasedSchedule:
    return load_schedule(io.StringIO(text))
