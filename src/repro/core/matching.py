"""Bipartite matching utilities (Hopcroft–Karp).

The constructive step-3/step-5 embeddings of Figure 4 always succeed on
valid inputs, but the scheduler also ships a matching-based fallback
(:func:`repro.core.scheduler.schedule_aapc` with
``local_embedding="matching"``): local messages are matched to feasible
phases by maximum bipartite matching.  This both provides defence in
depth for exotic topologies and serves as an independent oracle in the
test suite (the constructive embedding must never do worse).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

INFINITY = float("inf")


def hopcroft_karp(adjacency: Sequence[Sequence[int]], num_right: int) -> List[Optional[int]]:
    """Maximum bipartite matching.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-side vertices adjacent to left
        vertex ``u``.
    num_right:
        Number of right-side vertices.

    Returns
    -------
    list
        ``match[u]`` is the right vertex matched to left vertex ``u`` or
        ``None`` if unmatched.  Runs in ``O(E * sqrt(V))``.
    """
    num_left = len(adjacency)
    match_left: List[Optional[int]] = [None] * num_left
    match_right: List[Optional[int]] = [None] * num_right
    dist: List[float] = [0.0] * num_left

    def bfs() -> bool:
        queue: deque = deque()
        for u in range(num_left):
            if match_left[u] is None:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = INFINITY
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w is None:
                    found = True
                elif dist[w] == INFINITY:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            w = match_right[v]
            if w is None or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INFINITY
        return False

    while bfs():
        for u in range(num_left):
            if match_left[u] is None:
                dfs(u)
    return match_left


def matching_size(match_left: Sequence[Optional[int]]) -> int:
    """Number of matched left vertices."""
    return sum(1 for v in match_left if v is not None)
