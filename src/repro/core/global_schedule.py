"""Global message scheduling (Section 4.2, Figure 3).

:class:`GlobalSchedule` materialises the extended ring schedule: for
every ordered subtree pair it records the half-open interval of phases
in which the group's ``|M_i| * |M_j|`` messages run, and offers the
inverse queries ("which group does subtree ``i`` send to / receive from
in phase ``p``?") that the assignment step needs.

Lemma 2's properties — total phase count ``|M_0| * (|M| - |M_0|)`` and
at most one sending and one receiving group per subtree per phase — are
asserted at construction time, so downstream code can rely on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.core.ring import group_interval, total_phases


@dataclass(frozen=True)
class GroupInterval:
    """Phases ``[start, end)`` carrying the messages of ``t_i -> t_j``."""

    i: int
    j: int
    start: int
    end: int

    def __contains__(self, phase: int) -> bool:
        return self.start <= phase < self.end

    @property
    def length(self) -> int:
        return self.end - self.start

    def local(self, phase: int) -> int:
        """Offset of *phase* inside the group (the pattern index ``q``)."""
        if phase not in self:
            raise SchedulingError(
                f"phase {phase} outside group t{self.i}->t{self.j} "
                f"[{self.start}, {self.end})"
            )
        return phase - self.start


class GlobalSchedule:
    """Phase intervals for all inter-subtree groups.

    Parameters
    ----------
    sizes:
        Machine counts ``(|M_0|, ..., |M_{k-1}|)``, non-increasing.
    """

    def __init__(self, sizes: Sequence[int]) -> None:
        self.sizes: Tuple[int, ...] = tuple(sizes)
        self.k = len(self.sizes)
        self.num_phases = total_phases(self.sizes)
        self._groups: Dict[Tuple[int, int], GroupInterval] = {}
        for i in range(self.k):
            for j in range(self.k):
                if i == j:
                    continue
                start, end = group_interval(i, j, self.sizes)
                self._groups[(i, j)] = GroupInterval(i, j, start, end)
        # Inverse maps: for each subtree and phase, the active group.
        self._sender_at: List[List[Optional[int]]] = [
            [None] * self.num_phases for _ in range(self.k)
        ]
        self._receiver_at: List[List[Optional[int]]] = [
            [None] * self.num_phases for _ in range(self.k)
        ]
        for (i, j), g in self._groups.items():
            for p in range(g.start, g.end):
                if self._sender_at[i][p] is not None:
                    raise SchedulingError(
                        f"Lemma 2 violated: subtree {i} sends to two groups "
                        f"in phase {p} (to {self._sender_at[i][p]} and {j})"
                    )
                if self._receiver_at[j][p] is not None:
                    raise SchedulingError(
                        f"Lemma 2 violated: subtree {j} receives two groups "
                        f"in phase {p} (from {self._receiver_at[j][p]} and {i})"
                    )
                self._sender_at[i][p] = j
                self._receiver_at[j][p] = i

    # ------------------------------------------------------------------
    def group(self, i: int, j: int) -> GroupInterval:
        """The interval of group ``t_i -> t_j``."""
        try:
            return self._groups[(i, j)]
        except KeyError:
            raise SchedulingError(f"no group t{i}->t{j}") from None

    def groups(self) -> List[GroupInterval]:
        """All groups, ordered by (start phase, i, j)."""
        return sorted(self._groups.values(), key=lambda g: (g.start, g.i, g.j))

    def destination_of(self, i: int, phase: int) -> Optional[int]:
        """Subtree that ``t_i`` sends to in *phase*, or None if idle."""
        self._check_phase(phase)
        return self._sender_at[i][phase]

    def source_of(self, j: int, phase: int) -> Optional[int]:
        """Subtree that sends into ``t_j`` in *phase*, or None if idle."""
        self._check_phase(phase)
        return self._receiver_at[j][phase]

    def active_groups(self, phase: int) -> List[GroupInterval]:
        """Groups with a message in *phase* (one per sending subtree)."""
        self._check_phase(phase)
        out = []
        for i in range(self.k):
            j = self._sender_at[i][phase]
            if j is not None:
                out.append(self._groups[(i, j)])
        return out

    def _check_phase(self, phase: int) -> None:
        if not 0 <= phase < self.num_phases:
            raise SchedulingError(
                f"phase {phase} out of range [0, {self.num_phases})"
            )

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII rendering in the style of the paper's Figure 3."""
        lines = [f"phases: {self.num_phases}  sizes: {list(self.sizes)}"]
        for g in self.groups():
            bar = (
                " " * g.start
                + "#" * g.length
                + " " * (self.num_phases - g.end)
            )
            lines.append(f"t{g.i}->t{g.j} |{bar}|")
        return "\n".join(lines)


def build_global_schedule(sizes: Sequence[int]) -> GlobalSchedule:
    """Construct and sanity-check the extended ring global schedule."""
    return GlobalSchedule(sizes)
