"""Broadcast and rotate patterns for realising ``t_i -> t_j`` (Section 4.3).

Both patterns pick, for each of the group's ``|M_i| * |M_j|`` phases, a
(sender index, receiver index) pair such that every sender/receiver pair
occurs exactly once.

*Broadcast* (Lemma 5): the phases split into ``|M_i|`` rounds of
``|M_j]`` phases; round ``r`` is sender ``t_{i,r}`` sending to each
receiver in turn — every sender occupies ``|M_j|`` consecutive phases.

*Rotate* (Lemma 6, Table 2): with ``D = gcd(|M_i|, |M_j|)``,
``a = |M_i|/D``, ``b = |M_j|/D``, receivers repeat a fixed enumeration of
``t_j`` while senders repeat the base sequence ``b`` times per rotation
block of ``a*b*D`` phases, rotating the base sequence once per block —
every sender occurs once per ``|M_i|`` consecutive phases and every
receiver once per ``|M_j|``.

Receiver enumerations may be cyclically shifted (``receiver_offset``) so
that the group's receivers align with the paper's global alignment rule
"at phase ``p``, ``t_{j,(p - |M0|*(|M|-|M0|)) mod |Mj|}`` is the
receiver"; the proof in DESIGN.md shows coverage is preserved for any
offset.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import SchedulingError

#: One (sender index, receiver index) assignment per local phase.
PairPattern = List[Tuple[int, int]]


def broadcast_pattern(
    mi: int, mj: int, *, receiver_offset: int = 0
) -> PairPattern:
    """The broadcast pattern realising ``t_i -> t_j``.

    Local phase ``q`` maps to sender ``q // mj`` and receiver
    ``(q + receiver_offset) mod mj``, i.e. sender ``t_{i,r}`` owns round
    ``r`` and sweeps all receivers (Lemma 5).
    """
    _check(mi, mj)
    return [
        (q // mj, (q + receiver_offset) % mj)
        for q in range(mi * mj)
    ]


def rotate_pattern(
    mi: int, mj: int, *, receiver_offset: int = 0
) -> PairPattern:
    """The rotate pattern realising ``t_i -> t_j`` (Table 2).

    Local phase ``q`` maps to receiver ``(q + receiver_offset) mod mj``
    and sender ``(q + q // (a*b*D)) mod mi`` — the base sender sequence
    repeated ``b`` times per block, rotated once per block.
    """
    _check(mi, mj)
    d = math.gcd(mi, mj)
    block = (mi // d) * (mj // d) * d  # a * b * D
    return [
        ((q + q // block) % mi, (q + receiver_offset) % mj)
        for q in range(mi * mj)
    ]


def pattern_covers_all_pairs(pattern: PairPattern, mi: int, mj: int) -> bool:
    """True when the pattern realises every (sender, receiver) pair once."""
    if len(pattern) != mi * mj:
        return False
    return len(set(pattern)) == mi * mj


def senders_once_per_window(pattern: PairPattern, mi: int) -> bool:
    """Lemma 6 sender property: each window of ``mi`` phases has all senders.

    Checked on aligned windows (the form the assignment algorithm relies
    on: groups start at multiples of ``|M_i|``).
    """
    for start in range(0, len(pattern), mi):
        window = [s for s, _ in pattern[start : start + mi]]
        if len(window) == mi and len(set(window)) != mi:
            return False
    return True


def receivers_once_per_window(pattern: PairPattern, mj: int) -> bool:
    """Lemma 6 receiver property on aligned windows of ``mj`` phases."""
    for start in range(0, len(pattern), mj):
        window = [r for _, r in pattern[start : start + mj]]
        if len(window) == mj and len(set(window)) != mj:
            return False
    return True


def _check(mi: int, mj: int) -> None:
    if mi < 1 or mj < 1:
        raise SchedulingError(
            f"pattern sizes must be positive, got |Mi|={mi}, |Mj|={mj}"
        )
