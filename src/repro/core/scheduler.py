"""Top-level AAPC scheduling pipeline.

:func:`schedule_aapc` chains root identification, extended-ring global
scheduling, and the six-step assignment into a verified
:class:`~repro.core.schedule.PhasedSchedule`.  Two local-embedding
strategies are available:

* ``"constructive"`` (default) — the paper's Figure 4 steps 3 and 5;
* ``"matching"`` — global messages as in the paper, local messages
  embedded by maximum bipartite matching against the feasibility
  conditions of Lemma 3.  Used as an independent oracle in tests and as
  defence in depth (the scheduler falls back to it automatically if the
  constructive embedding ever fails).

The trivial clusters the paper sets aside (``|M| <= 2``) are handled
directly: one machine needs no phases, two machines exchange their
messages in a single phase over the duplex link.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SchedulingError
from repro.obs.metrics_registry import metric_inc, metric_observe
from repro.obs.profiling import add_counters, pipeline_span
from repro.core.assignment import AssignmentState, assign_messages
from repro.core.assignment import (
    _step1_t0_to_others,
    _step2_others_to_t0,
    _step4_down_ring_globals,
    _step6_up_ring_globals,
)
from repro.core.global_schedule import GlobalSchedule, build_global_schedule
from repro.core.matching import hopcroft_karp
from repro.core.pattern import Message
from repro.core.root import RootInfo, identify_root
from repro.core.schedule import MessageKind, PhasedSchedule
from repro.core.verify import verify_schedule
from repro.topology.graph import Topology
from repro.topology.paths import PathOracle


def schedule_aapc(
    topology: Topology,
    *,
    verify: bool = True,
    local_embedding: str = "constructive",
    root: Optional[str] = None,
) -> PhasedSchedule:
    """Build the paper's contention-free AAPC schedule for *topology*.

    Parameters
    ----------
    topology:
        A validated (or validatable) cluster tree.
    verify:
        Run the ground-truth verifiers before returning (recommended;
        the cost is O(messages * path length)).
    local_embedding:
        ``"constructive"`` for the paper's steps 3/5, ``"matching"`` for
        the bipartite-matching embedding.
    root:
        Force a particular scheduling root (validated); by default the
        Section 4.1 procedure picks one.

    Returns
    -------
    PhasedSchedule
        ``|M_0| * (|M| - |M_0|)`` contention-free phases realising AAPC.
    """
    with pipeline_span("schedule_aapc"):
        if not topology.validated:
            topology.validate()
        m = topology.num_machines
        if m <= 2:
            schedule = _trivial_schedule(topology)
            add_counters(phases=schedule.num_phases, messages=len(schedule))
            return schedule

        with pipeline_span("root_identification"):
            info = identify_root(topology, root)
        with pipeline_span("global_schedule"):
            gs = build_global_schedule(info.sizes)

        with pipeline_span("phase_partitioning"):
            if local_embedding == "constructive":
                try:
                    schedule = assign_messages(topology, info, gs)
                except SchedulingError:
                    # Defence in depth: the constructive embedding is
                    # proven for valid inputs, but fall back to matching
                    # rather than fail.
                    metric_inc("scheduler.backtracks")
                    schedule = _assign_with_matching(topology, info, gs)
            elif local_embedding == "matching":
                schedule = _assign_with_matching(topology, info, gs)
            else:
                raise SchedulingError(
                    f"unknown local_embedding {local_embedding!r}; expected "
                    "'constructive' or 'matching'"
                )
        add_counters(phases=schedule.num_phases, messages=len(schedule))

        if verify:
            with pipeline_span("verify_schedule"):
                verify_schedule(schedule)
        return schedule


def schedule_pairs(
    topology: Topology,
    pending: Sequence[Message],
    *,
    template: Optional[PhasedSchedule] = None,
    oracle: Optional[PathOracle] = None,
    compact: bool = False,
    forbidden_edges: AbstractSet[FrozenSet[str]] = frozenset(),
    verify: bool = True,
) -> PhasedSchedule:
    """Phase-partition an arbitrary pair set (the repair entry point).

    Unlike :func:`schedule_aapc`, which always schedules the full AAPC
    pattern, this packs exactly the *pending* messages into
    contention-free phases with a greedy earliest-fit placement.  Two
    properties make it usable for incremental schedule repair
    (:mod:`repro.faults.repair`):

    * **Hint seeding.**  When *template* is given, each message first
      tries the phase the template assigned it.  With the full pattern
      pending, every hint slot is feasible (the template phase was
      contention free), so the repacking reproduces the template exactly
      — including its optimal phase count.
    * **Compaction.**  With ``compact=True`` hints only order the
      placement; each message lands in its earliest feasible phase, so
      a residual pair set (mid-run resume) packs into fewer phases than
      the template's tail.

    *forbidden_edges* are physical links (as ``frozenset({u, v})``) no
    scheduled path may use — a dead link makes its pairs unschedulable
    and raises :class:`SchedulingError`.
    """
    with pipeline_span("schedule_pairs"):
        if not topology.validated:
            topology.validate()
        if oracle is None:
            oracle = PathOracle(topology)

        hints: Dict[Message, int] = {}
        kinds: Dict[Message, Tuple[MessageKind, Tuple[int, int]]] = {}
        if template is not None:
            for sm in template.all_messages():
                hints[sm.message] = sm.phase
                kinds[sm.message] = (sm.kind, sm.group)

        order = sorted(pending, key=lambda m: (hints.get(m, 1 << 30), m))
        if len(set(order)) != len(order):
            raise SchedulingError("pending pair set contains duplicates")

        # Per phase: directed edges in use, plus sender/receiver sets
        # (endpoint discipline, also implied by the duplex machine link).
        used: List[Set[Tuple[str, str]]] = []
        senders: List[Set[str]] = []
        receivers: List[Set[str]] = []
        placed: List[List[Message]] = []

        def fits(p: int, msg: Message, edges) -> bool:
            if msg.src in senders[p] or msg.dst in receivers[p]:
                return False
            return not any(e in used[p] for e in edges)

        def put(p: int, msg: Message, edges) -> None:
            placed[p].append(msg)
            senders[p].add(msg.src)
            receivers[p].add(msg.dst)
            used[p].update(edges)

        def grow() -> int:
            used.append(set())
            senders.append(set())
            receivers.append(set())
            placed.append([])
            return len(placed) - 1

        rescheduled = 0
        for msg in order:
            edges = oracle.path_edges(msg.src, msg.dst)
            for u, v in edges:
                if frozenset((u, v)) in forbidden_edges:
                    raise SchedulingError(
                        f"pair {msg} requires dead link {u}<->{v}; "
                        "no schedule can carry it"
                    )
            hint = hints.get(msg)
            target: Optional[int] = None
            if not compact and hint is not None:
                while len(placed) <= hint:
                    grow()
                if fits(hint, msg, edges):
                    target = hint
            if target is None:
                for p in range(len(placed)):
                    if fits(p, msg, edges):
                        target = p
                        break
                else:
                    target = grow()
            put(target, msg, edges)
            if hint is None or target != hint:
                rescheduled += 1

        # Hint mode may have grown empty phases past the last placement.
        while placed and not placed[-1]:
            placed.pop()

        schedule = PhasedSchedule(topology, len(placed))
        for p, msgs in enumerate(placed):
            for msg in msgs:
                kind, group = kinds.get(msg, (MessageKind.LOCAL, (-1, -1)))
                schedule.add(p, msg, kind, group)

        metric_inc("scheduler.pair_repacks")
        metric_observe("scheduler.pairs_repacked", len(order))
        add_counters(
            phases=schedule.num_phases,
            messages=len(schedule),
            rescheduled=rescheduled,
        )
        if verify:
            from repro.core.verify import verify_schedule_for_pairs

            verify_schedule_for_pairs(
                schedule,
                set(pending),
                oracle=oracle,
                forbidden_edges=forbidden_edges,
            )
        return schedule


def _trivial_schedule(topology: Topology) -> PhasedSchedule:
    """AAPC for one or two machines: zero or one phase."""
    machines = topology.machines
    if len(machines) <= 1:
        return PhasedSchedule(topology, 0)
    schedule = PhasedSchedule(topology, 1)
    a, b = machines
    schedule.add(0, Message(a, b), MessageKind.LOCAL)
    schedule.add(0, Message(b, a), MessageKind.LOCAL)
    return schedule


# ----------------------------------------------------------------------
# Matching-based local embedding
# ----------------------------------------------------------------------
def _assign_with_matching(
    topology: Topology, info: RootInfo, gs: GlobalSchedule
) -> PhasedSchedule:
    """Globals per steps 1/2/4/6; locals by maximum bipartite matching."""
    metric_inc("scheduler.phase_partition_attempts")
    state = AssignmentState(topology, info, gs)
    _step1_t0_to_others(state)
    _step2_others_to_t0(state)
    _step4_down_ring_globals(state)
    _step6_up_ring_globals(state)
    _embed_locals_by_matching(state)
    return state.schedule


def _embed_locals_by_matching(state: AssignmentState) -> None:
    """Embed each subtree's local messages via Hopcroft-Karp.

    Feasibility of a local message ``u -> v`` of subtree ``i`` at phase
    ``p`` follows Lemma 3's three contention-free cases:

    1. ``v`` sends a global message and ``u`` receives one;
    2. ``v`` sends a global message and no machine of ``t_i`` receives;
    3. ``u`` receives a global message and no machine of ``t_i`` sends.
    """
    # Per phase and subtree: the subtree's global sender/receiver machine.
    k = state.k
    sender_at: List[List[Optional[str]]] = [
        [None] * state.T for _ in range(k)
    ]
    receiver_at: List[List[Optional[str]]] = [
        [None] * state.T for _ in range(k)
    ]
    for sm in state.schedule.all_messages():
        i, j = sm.group
        sender_at[i][sm.phase] = sm.src
        receiver_at[j][sm.phase] = sm.dst

    for i in range(k):
        mi = state.sizes[i]
        if mi < 2:
            continue
        machines = state.info.subtrees[i].machines
        pairs: List[Tuple[int, int]] = [
            (a, b) for a in range(mi) for b in range(mi) if a != b
        ]
        adjacency: List[List[int]] = []
        for a, b in pairs:
            u, v = machines[a], machines[b]
            feasible = []
            for p in range(state.T):
                s, r = sender_at[i][p], receiver_at[i][p]
                ok = (
                    (s == v and r == u)
                    or (s == v and r is None)
                    or (r == u and s is None)
                )
                if ok:
                    feasible.append(p)
            adjacency.append(feasible)
        match = hopcroft_karp(adjacency, state.T)
        metric_observe(
            "scheduler.matching_size",
            sum(1 for p in match if p is not None),
        )
        unmatched = [pairs[idx] for idx, p in enumerate(match) if p is None]
        if unmatched:
            raise SchedulingError(
                f"matching embedding failed for subtree {i}: no feasible "
                f"phase for local pairs {unmatched}"
            )
        for idx, p in enumerate(match):
            a, b = pairs[idx]
            assert p is not None
            state.add_local(p, i, a, b)
